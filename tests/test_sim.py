"""Tests for the discrete-event simulator: events, delays, network, metrics."""

import random

import pytest

from repro.graphs import WeightedGraph, path_graph, ring_graph
from repro.sim import (
    EventQueue,
    MaximalDelay,
    MuxProcess,
    Network,
    PerEdgeDelay,
    Process,
    ScaledDelay,
    UniformDelay,
)


# --------------------------------------------------------------------- #
# Event queue
# --------------------------------------------------------------------- #


def test_event_queue_ordering():
    q = EventQueue()
    fired = []
    q.schedule(3.0, lambda: fired.append("c"))
    q.schedule(1.0, lambda: fired.append("a"))
    q.schedule(2.0, lambda: fired.append("b"))
    while q.step():
        pass
    assert fired == ["a", "b", "c"]
    assert q.now == 3.0


def test_event_queue_fifo_ties():
    q = EventQueue()
    fired = []
    for i in range(5):
        q.schedule(1.0, lambda i=i: fired.append(i))
    while q.step():
        pass
    assert fired == [0, 1, 2, 3, 4]


def test_event_queue_rejects_negative_and_past():
    q = EventQueue()
    with pytest.raises(ValueError):
        q.schedule(-1.0, lambda: None)
    q.schedule(5.0, lambda: None)
    q.step()
    with pytest.raises(ValueError):
        q.schedule_at(1.0, lambda: None)


# --------------------------------------------------------------------- #
# Delay models
# --------------------------------------------------------------------- #


def test_delay_models_within_bounds():
    rng = random.Random(0)
    assert MaximalDelay().delay(0, 1, 7.0, rng) == 7.0
    assert ScaledDelay(0.5).delay(0, 1, 8.0, rng) == 4.0
    for _ in range(50):
        d = UniformDelay().delay(0, 1, 3.0, rng)
        assert 0.0 <= d <= 3.0
    for _ in range(50):
        d = UniformDelay(0.25, 0.75).delay(0, 1, 4.0, rng)
        assert 1.0 <= d <= 3.0


def test_delay_model_validation():
    with pytest.raises(ValueError):
        ScaledDelay(1.5)
    with pytest.raises(ValueError):
        UniformDelay(0.9, 0.1)
    bad = PerEdgeDelay(lambda u, v, w: w * 2)
    with pytest.raises(ValueError):
        bad.delay(0, 1, 1.0, random.Random(0))


def test_per_edge_delay_adversary():
    sched = {(0, 1): 0.0, (1, 0): 1.0}
    model = PerEdgeDelay(lambda u, v, w: sched[(u, v)] * w)
    rng = random.Random(0)
    assert model.delay(0, 1, 5.0, rng) == 0.0
    assert model.delay(1, 0, 5.0, rng) == 5.0


# --------------------------------------------------------------------- #
# Network mechanics via a tiny ping-pong protocol
# --------------------------------------------------------------------- #


class PingPong(Process):
    def __init__(self, starter, rounds):
        self.starter = starter
        self.rounds = rounds

    def on_start(self):
        if self.starter:
            self.send(self.neighbors()[0], self.rounds, tag="ping")

    def on_message(self, frm, k):
        if k <= 0:
            self.finish("done")
            return
        self.send(frm, k - 1, tag="pong")


def test_ping_pong_cost_and_time():
    g = WeightedGraph([(0, 1, 5.0)])
    net = Network(g, lambda v: PingPong(v == 0, 3))
    result = net.run()
    # messages: 3, 2, 1, 0 -> 4 transmissions of cost 5 each
    assert result.message_count == 4
    assert result.comm_cost == 20.0
    assert result.time == 20.0  # maximal delay model: each hop takes 5


def test_scaled_delay_halves_time_not_cost():
    g = WeightedGraph([(0, 1, 5.0)])
    net = Network(g, lambda v: PingPong(v == 0, 3), delay=ScaledDelay(0.5))
    result = net.run()
    assert result.comm_cost == 20.0
    assert result.time == 10.0


def test_send_to_non_neighbor_rejected():
    class Bad(Process):
        def on_start(self):
            if self.node_id == 0:
                self.send(2, "x")

    g = path_graph(3)
    net = Network(g, lambda v: Bad())
    with pytest.raises(ValueError):
        net.run()


def test_fifo_per_channel():
    """A later fast message must not overtake an earlier slow one."""
    order = []

    class Sender(Process):
        def on_start(self):
            if self.node_id == 0:
                self.send(1, "first")
                self.send(1, "second")

    class Receiver(Sender):
        def on_message(self, frm, payload):
            order.append(payload)

    # Adversary: first message max delay, second zero delay.
    delays = iter([1.0, 0.0])
    model = PerEdgeDelay(lambda u, v, w: next(delays) * w)
    g = WeightedGraph([(0, 1, 4.0)])
    net = Network(g, lambda v: Receiver(), delay=model)
    net.run()
    assert order == ["first", "second"]


def test_serialized_channel_accumulates_delay():
    class Burst(Process):
        def __init__(self):
            self.got = 0

        def on_start(self):
            if self.node_id == 0:
                for _ in range(3):
                    self.send(1, "x")

        def on_message(self, frm, payload):
            self.got += 1

    g = WeightedGraph([(0, 1, 2.0)])
    net = Network(g, lambda v: Burst(), serialize=True)
    result = net.run()
    assert result.time == 6.0  # 3 messages serialized at 2.0 each

    net2 = Network(g, lambda v: Burst(), serialize=False)
    result2 = net2.run()
    assert result2.time == 2.0  # pipelined


def test_metrics_tags():
    g = WeightedGraph([(0, 1, 3.0)])
    net = Network(g, lambda v: PingPong(v == 0, 1))
    result = net.run()
    m = result.metrics
    assert m.count_by_tag["ping"] == 1
    assert m.count_by_tag["pong"] == 1
    assert m.cost_by_tag["ping"] == 3.0
    assert "ping" in m.summary()


def test_timers():
    class TimerProc(Process):
        def on_start(self):
            if self.node_id == 0:
                self.set_timer(7.5, lambda: self.finish("timer fired"))
            else:
                self.finish(None)

    g = path_graph(2)
    net = Network(g, lambda v: TimerProc())
    result = net.run()
    assert result.result_of(0) == "timer fired"


def test_max_events_backstop():
    class Storm(Process):
        def on_start(self):
            self.send(self.neighbors()[0], 0)

        def on_message(self, frm, payload):
            self.send(frm, payload)

    g = WeightedGraph([(0, 1, 1.0)])
    net = Network(g, lambda v: Storm())
    with pytest.raises(RuntimeError):
        net.run(max_events=100)


def test_stop_when():
    g = ring_graph(4)
    net = Network(g, lambda v: PingPong(v == 0, 100))
    result = net.run(stop_when=lambda n: n.metrics.message_count >= 10)
    assert result.message_count == 10


def test_run_result_accessors():
    g = WeightedGraph([(0, 1, 1.0)])
    net = Network(g, lambda v: PingPong(v == 0, 0))
    result = net.run()
    assert result.result_of(1) == "done"
    assert set(result.results()) == {0, 1}


# --------------------------------------------------------------------- #
# Mux
# --------------------------------------------------------------------- #


def test_mux_runs_two_protocols_independently():
    g = WeightedGraph([(0, 1, 2.0)])

    def factory(v):
        return MuxProcess({
            "a": PingPong(v == 0, 2),
            "b": PingPong(v == 1, 4),
        })

    net = Network(g, factory)
    result = net.run()
    # part a: 3 messages, part b: 5 messages; each costs 2.
    m = result.metrics
    a_count = sum(n for t, n in m.count_by_tag.items() if t.startswith("a."))
    b_count = sum(n for t, n in m.count_by_tag.items() if t.startswith("b."))
    assert a_count == 3
    assert b_count == 5
    assert m.comm_cost == (3 + 5) * 2.0
    # finish: both nodes finish once both their parts finish... part 'a'
    # finishes at node 1 (receiver of final ping), part 'b' at node 0.
    # With default finish_when=all, nodes don't finish here (each node only
    # completes one part), so just check part results directly.
    proc0 = result.processes[0]
    assert proc0.part("b").ctx.is_finished


def test_mux_finish_when_any():
    g = WeightedGraph([(0, 1, 2.0)])

    def factory(v):
        return MuxProcess(
            {"a": PingPong(v == 0, 0), "b": PingPong(v == 1, 50)},
            finish_when=lambda done: len(done) >= 1,
        )

    net = Network(g, factory)
    result = net.run(stop_when=lambda n: n.all_finished)
    assert result.processes[1].ctx.is_finished
