"""Streamed flat-graph builders and snapshot kernels.

Three contracts pinned here:

1. **Stream == dict**: each direct-to-CSR generator
   (``lower_bound_flat`` / ``lower_bound_split_flat`` /
   ``random_connected_flat``) is byte-identical — all three buffers and
   the content fingerprint — to building the dict-of-dicts graph,
   snapshotting it to CSR, and converting (``flat_of``).  This is what
   lets the big bench tier skip the dict representation entirely at
   n = 10^6 without changing a single byte of any answer.
2. **Kernel identity**: ``flat_sssp_dist`` matches the ``sssp_maps``
   oracle; ``flat_source_stats`` (heap Dijkstra) and
   ``np_flat_source_stats`` (batched relaxation) return *equal dicts* —
   including the sha256 digest over the float64 distance bytes, the PR 7
   identity contract extended to the flat snapshot path.
3. **Fingerprint stability**: pinned hex literals, so an accidental
   change to buffer layout, interning order, or hashing shows up as a
   test diff rather than a silently incompatible shared-memory key.
"""

import math
import random

import pytest

from repro.graphs import (
    FlatGraph,
    csr_of,
    edges_to_flat,
    flat_of,
    lower_bound_flat,
    lower_bound_graph,
    lower_bound_split_flat,
    lower_bound_split_graph,
    random_connected_flat,
    random_connected_graph,
    sssp_maps,
)
from repro.graphs.csr import flat_source_stats, flat_sssp_dist, flat_stripe_stats
from repro.graphs.npkernels import np_flat_source_stats, numpy_available


def assert_flats_identical(a: FlatGraph, b: FlatGraph) -> None:
    assert a.n == b.n
    assert a.m2 == b.m2
    assert a.integral == b.integral
    assert a.wmax == b.wmax
    ab, bb = a.buffers(), b.buffers()
    for x, y in zip(ab, bb, strict=True):
        assert bytes(x) == bytes(y)
    assert a.fingerprint == b.fingerprint


# --------------------------------------------------------------------- #
# Stream == dict byte identity
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("n", [4, 5, 8, 12, 37])
def test_lower_bound_stream_matches_dict(n):
    streamed = lower_bound_flat(n)
    via_dict = flat_of(csr_of(lower_bound_graph(n)))
    assert_flats_identical(streamed, via_dict)


def test_lower_bound_heavy_stream_matches_dict():
    streamed = lower_bound_flat(9, 16.0)
    via_dict = flat_of(csr_of(lower_bound_graph(9, 16.0)))
    assert_flats_identical(streamed, via_dict)
    # Validation parity with the dict builder.
    with pytest.raises(ValueError):
        lower_bound_flat(3)
    with pytest.raises(ValueError):
        lower_bound_flat(9, 4.0)


@pytest.mark.parametrize("n,i", [(8, 2), (13, 5), (20, 1), (21, 10)])
def test_lower_bound_split_stream_matches_dict(n, i):
    streamed = lower_bound_split_flat(n, i)
    via_dict = flat_of(csr_of(lower_bound_split_graph(n, i)))
    assert_flats_identical(streamed, via_dict)


@pytest.mark.parametrize("n,extra,seed", [
    (1, 0, 0), (2, 0, 1), (14, 20, 2), (60, 150, 7), (25, 1000, 5),
])
def test_random_stream_matches_dict(n, extra, seed):
    streamed = random_connected_flat(n, extra, seed=seed)
    via_dict = flat_of(csr_of(random_connected_graph(n, extra, seed=seed)))
    assert_flats_identical(streamed, via_dict)


def test_random_stream_replays_explicit_rng():
    # Same RNG object, same draw sequence -> same graph; but no seed means
    # no rebuild spec (the stream can't be replayed from primitives).
    streamed = random_connected_flat(30, 40, rng=random.Random(99))
    via_dict = flat_of(csr_of(random_connected_graph(30, 40,
                                                     rng=random.Random(99))))
    assert_flats_identical(streamed, via_dict)
    assert streamed.spec is None
    assert random_connected_flat(30, 40, seed=99).spec == \
        ("random_connected", 30, 40, 99, 10.0)


def test_edges_to_flat_numpy_and_python_paths_agree():
    if not numpy_available():
        pytest.skip("numpy not installed")
    for builder in (
        lambda **kw: lower_bound_flat(23, **kw),
        lambda **kw: lower_bound_split_flat(19, 3, **kw),
        lambda **kw: random_connected_flat(40, 80, seed=6, **kw),
    ):
        assert_flats_identical(builder(use_numpy=False),
                               builder(use_numpy=True))


def test_fingerprints_pinned():
    # Content-addressed shared-memory keys: layout or hash changes must
    # be deliberate (they invalidate cross-process snapshot identity).
    assert lower_bound_flat(12).fingerprint == "2916cdc6c61c00fc"
    assert lower_bound_split_flat(13, 5).fingerprint == "27c7fcb3b8671b57"
    assert random_connected_flat(14, 20, seed=2).fingerprint == \
        "ce4b9be42d32240d"


def test_edges_to_flat_rejects_bad_lengths():
    from array import array

    with pytest.raises(ValueError):
        edges_to_flat(3, array("q", [0]), array("q", [1, 2]),
                      array("d", [1.0]), integral=True, wmax=1.0)


# --------------------------------------------------------------------- #
# Kernel identity on the flat snapshot
# --------------------------------------------------------------------- #


def test_flat_sssp_dist_matches_sssp_maps_oracle():
    g = random_connected_graph(40, 90, seed=11)
    csr = csr_of(g)
    flat = flat_of(csr)
    for source_idx in (0, 7, 39):
        dist = flat_sssp_dist(flat, source_idx)
        oracle, _ = sssp_maps(csr, csr.verts[source_idx])
        for idx, v in enumerate(csr.verts):
            expect = oracle.get(v, math.inf)
            assert dist[idx] == expect


def test_source_stats_python_numpy_identical():
    if not numpy_available():
        pytest.skip("numpy not installed")
    for flat in (
        random_connected_flat(50, 120, seed=3),
        lower_bound_flat(40),
        lower_bound_split_flat(30, 7),
    ):
        py = flat_source_stats(flat, 0, flat.n)
        np_ = np_flat_source_stats(flat, 0, flat.n)
        assert py == np_  # includes the distance-bytes digest
    pinned = flat_source_stats(random_connected_flat(50, 120, seed=3), 0, 50)
    assert pinned == {
        "kind": "sources", "lo": 0, "hi": 50, "sources": 50,
        "reach_min": 50, "ecc_max": 22.0, "digest": "d0d0fe6558f3b35a",
    }


def test_source_stats_partial_and_empty_ranges():
    flat = random_connected_flat(20, 30, seed=4)
    full = flat_source_stats(flat, 0, 20)
    half = flat_source_stats(flat, 5, 10)
    assert half["sources"] == 5
    assert half["ecc_max"] <= full["ecc_max"]
    empty = flat_source_stats(flat, 7, 7)
    assert empty["sources"] == 0
    assert empty["reach_min"] == 0
    assert empty["ecc_max"] == 0.0
    with pytest.raises(IndexError):
        flat_source_stats(flat, 0, 21)
    with pytest.raises(IndexError):
        flat_source_stats(flat, -1, 5)


def test_stripe_stats_cover_whole_graph():
    flat = random_connected_flat(60, 140, seed=9)
    rows = [flat_stripe_stats(flat, lo, min(lo + 7, 60))
            for lo in range(0, 60, 7)]
    assert sum(r["verts"] for r in rows) == flat.n
    assert sum(r["edges"] for r in rows) == flat.m2
    assert max(r["wmax"] for r in rows) == flat.wmax
    # Weight mass is duplicated across stripes exactly like the CSR
    # half-edges duplicate each undirected edge.
    total = sum(r["wsum"] for r in rows)
    assert total == pytest.approx(sum(flat.weights))
    # Same stripe, same bytes -> same digest; distinct stripes differ.
    assert flat_stripe_stats(flat, 0, 7) == rows[0]
    assert rows[0]["digest"] != rows[1]["digest"]
    with pytest.raises(IndexError):
        flat_stripe_stats(flat, 50, 61)


def test_flat_of_round_trips_through_cache():
    from repro.graphs import param_cache

    g = random_connected_graph(18, 25, seed=13)
    cache = param_cache(g)
    flat = cache.flat()
    assert cache.flat() is flat  # memoized per version
    assert cache.stats()["flat_builds"] == 1
    assert_flats_identical(flat, flat_of(csr_of(g)))
    g.add_edge(0, 17, 3.0)
    flat2 = cache.flat()
    assert flat2 is not flat
    assert flat2.version == g.version
    assert cache.stats()["flat_builds"] == 2
    assert flat2.fingerprint != flat.fingerprint
