"""Tests for simulator extras: budgets, tracing, delay adversaries under
serialization, and CostReport measures."""

import pytest

from repro.core.measures import report
from repro.graphs import WeightedGraph, network_params, path_graph, ring_graph
from repro.sim import Network, PerEdgeDelay, Process


class Chain(Process):
    """Forward a token down a path; each hop costs the edge weight."""

    def on_start(self):
        if self.node_id == 0:
            self.send(1, "tok")

    def on_message(self, frm, payload):
        nxt = self.node_id + 1
        if nxt in self.ctx.weights:
            self.send(nxt, payload)
        else:
            self.finish("end")


# --------------------------------------------------------------------- #
# Communication budgets (the hybrid enforcement mechanism)
# --------------------------------------------------------------------- #


def test_budget_suppresses_overspending_send():
    g = path_graph(6, weight=10.0)
    # Budget allows exactly 3 hops (cost 30); the 4th send is suppressed.
    net = Network(g, lambda v: Chain(), comm_budget=30.0)
    result = net.run()
    assert net.budget_exhausted
    assert result.comm_cost == 30.0
    assert not net.all_finished


def test_budget_never_exceeded_even_by_one_heavy_send():
    g = WeightedGraph([(0, 1, 5.0), (1, 2, 1000.0)])

    class Hop(Process):
        def on_start(self):
            if self.node_id == 0:
                self.send(1, "x")

        def on_message(self, frm, payload):
            if self.node_id == 1:
                self.send(2, payload)

    net = Network(g, lambda v: Hop(), comm_budget=100.0)
    result = net.run()
    # The 1000-cost send is refused *before* transmission.
    assert result.comm_cost == 5.0
    assert net.budget_exhausted


def test_budget_exactly_sufficient_run_completes():
    g = path_graph(4, weight=2.0)
    net = Network(g, lambda v: Chain(), comm_budget=6.0)
    result = net.run()
    assert not net.budget_exhausted
    assert result.result_of(3) == "end"


# --------------------------------------------------------------------- #
# Trace hook
# --------------------------------------------------------------------- #


def test_trace_records_every_transmission():
    events = []
    g = path_graph(4, weight=3.0)
    net = Network(
        g, lambda v: Chain(),
        trace=lambda t, u, v, tag, cost: events.append((t, u, v, tag, cost)),
    )
    net.run()
    assert len(events) == 3
    assert events[0] == (0.0, 0, 1, "msg", 3.0)
    assert events[1][0] == 3.0 and events[1][1:3] == (1, 2)
    times = [e[0] for e in events]
    assert times == sorted(times)


def test_trace_not_called_for_suppressed_sends():
    events = []
    g = path_graph(5, weight=10.0)
    net = Network(
        g, lambda v: Chain(), comm_budget=20.0,
        trace=lambda *a: events.append(a),
    )
    net.run()
    assert len(events) == 2  # the third hop was refused


# --------------------------------------------------------------------- #
# Adversarial delays (PerEdgeDelay) and serialized channels
# --------------------------------------------------------------------- #


class Burst(Process):
    """Node 0 sends two back-to-back messages to node 1, which logs
    (arrival time, payload)."""

    def __init__(self):
        self.log = []

    def on_start(self):
        if self.node_id == 0:
            self.send(1, "a")
            self.send(1, "b")

    def on_message(self, frm, payload):
        self.log.append((self.now, payload))


def _burst_log(**net_kwargs):
    g = WeightedGraph([(0, 1, 4.0)])
    net = Network(g, lambda v: Burst(), **net_kwargs)
    net.run()
    return net.processes[1].log


def test_per_edge_delay_fifo_clamp_when_pipelined():
    # Adversary: first transmission takes the full w(e)=4, second takes 1.
    # Pipelined channels are still FIFO per directed edge, so the fast
    # second message is clamped to the first's arrival — no overtaking.
    delays = iter([4.0, 1.0])
    log = _burst_log(delay=PerEdgeDelay(lambda u, v, w: next(delays)))
    assert log == [(4.0, "a"), (4.0, "b")]


def test_per_edge_delay_serialized_store_and_forward():
    # Same adversary, serialize=True: the channel transmits one message at
    # a time, so the second transmission *starts* only when the first is
    # done (t=4) and arrives a further 1 later.
    delays = iter([4.0, 1.0])
    log = _burst_log(delay=PerEdgeDelay(lambda u, v, w: next(delays)),
                     serialize=True)
    assert log == [(4.0, "a"), (5.0, "b")]


def test_serialized_channel_occupancy_accumulates():
    # Zero-ish adversary under serialization: each transmission still
    # occupies the channel for its own delay, sequentially.
    delays = iter([1.0, 1.0])
    log = _burst_log(delay=PerEdgeDelay(lambda u, v, w: next(delays)),
                     serialize=True)
    assert log == [(1.0, "a"), (2.0, "b")]


def test_per_edge_delay_schedule_keyed_by_edge_and_count():
    # The documented use: a stateful schedule keyed by (edge, transmission
    # index) realizing a specific adversary along a path.
    counts = {}

    def schedule(u, v, w):
        k = counts[(u, v)] = counts.get((u, v), 0) + 1
        return w / k

    g = path_graph(3, weight=2.0)
    net = Network(g, lambda v: Chain(),
                  delay=PerEdgeDelay(schedule), serialize=True)
    result = net.run()
    # One transmission per edge, each at full weight on first use.
    assert result.time == 4.0
    assert counts == {(0, 1): 1, (1, 2): 1}


def test_per_edge_delay_rejects_out_of_range():
    g = WeightedGraph([(0, 1, 4.0)])
    net = Network(g, lambda v: Burst(),
                  delay=PerEdgeDelay(lambda u, v, w: w + 1.0))
    with pytest.raises(ValueError):
        net.run()


def test_serialized_channels_are_directional():
    # Opposite directions of an edge are distinct channels: simultaneous
    # sends both ways do not serialize against each other.
    class Pair(Process):
        def __init__(self):
            self.log = []

        def on_start(self):
            self.send(1 - self.node_id, "x")

        def on_message(self, frm, payload):
            self.log.append(self.now)

    g = WeightedGraph([(0, 1, 3.0)])
    net = Network(g, lambda v: Pair(), serialize=True)
    net.run()
    assert net.processes[0].log == [3.0]
    assert net.processes[1].log == [3.0]


# --------------------------------------------------------------------- #
# CostReport
# --------------------------------------------------------------------- #


def test_cost_report_ratios():
    g = ring_graph(6, weight=2.0)
    rep = report("demo", g, comm_cost=24.0, time=6.0, message_count=12)
    assert rep.comm_ratio(12.0) == pytest.approx(2.0)
    assert rep.time_ratio(3.0) == pytest.approx(2.0)
    with pytest.raises(ValueError):
        rep.comm_ratio(0.0)
    with pytest.raises(ValueError):
        rep.time_ratio(-1.0)
    assert "demo" in str(rep)


def test_cost_report_reuses_params():
    g = ring_graph(5)
    p = network_params(g)
    rep = report("x", g, 1.0, 1.0, 1, params=p)
    assert rep.params is p
    rep2 = report("y", g, 1.0, 1.0, 1)
    assert rep2.params.n == p.n
