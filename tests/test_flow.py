"""Tests for repro.analysis.flow: message-flow extraction and exporters.

The headline contract — every message kind a protocol module sends has a
handler arm in that module, and every handler arm has a sender — is
asserted over the full certified surface (:data:`PROTOCOL_MODULES`), with
a golden structural test for the richest machine (GHS MST).
"""

from __future__ import annotations

import ast
import importlib
import inspect

import pytest

from repro.analysis.flow import (
    PROTOCOL_MODULES,
    ModuleFlow,
    extract_module_flow,
    flow_of_source,
    flow_to_ascii,
    flow_to_dot,
)

GHS_KINDS = frozenset({
    "connect", "initiate", "test", "accept",
    "reject", "report", "change_root", "halt",
})


def _flow_of_module(name: str) -> ModuleFlow:
    mod = importlib.import_module(name)
    source = inspect.getsource(mod)
    return extract_module_flow(ast.parse(source), path=name, source=source)


# --------------------------------------------------------------------- #
# The send/handle contract over the certified surface
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("module", PROTOCOL_MODULES)
def test_sent_kinds_equal_handled_kinds(module):
    flow = _flow_of_module(module)
    assert flow.sent_kinds == flow.handled_kinds, (
        f"{module}: sent {sorted(flow.sent_kinds)} "
        f"!= handled {sorted(flow.handled_kinds)}"
    )


def test_certified_surface_is_not_trivial():
    """Most of the certified modules carry literal-kind traffic."""
    nonempty = [m for m in PROTOCOL_MODULES
                if _flow_of_module(m).sent_kinds]
    assert len(nonempty) >= 8


# --------------------------------------------------------------------- #
# Golden graph: GHS MST
# --------------------------------------------------------------------- #


def test_mst_ghs_golden_flow_graph():
    flow = _flow_of_module("repro.protocols.mst_ghs")
    assert flow.sent_kinds == GHS_KINDS
    assert flow.handled_kinds == GHS_KINDS

    graph = flow.graph()
    assert set(graph) == set(GHS_KINDS)
    # Every kind funnels through the single dispatch ladder.
    for node in graph.values():
        assert "GhsProcess._try" in node.handlers
    # Structural spot checks against the paper's phase machine.
    assert "initiate" in graph["connect"].responds
    assert {"accept", "reject"} <= graph["test"].responds
    assert "halt" in graph["halt"].responds  # halt floods down the tree
    assert "GhsProcess._wakeup" in graph["connect"].senders


# --------------------------------------------------------------------- #
# Extraction specifics on inline sources
# --------------------------------------------------------------------- #


def test_cross_class_traffic_satisfies_module_contract():
    source = """
class PingerProcess:
    def on_start(self):
        self.send(0, ("ping",), tag="flood")

class PongerProcess:
    def on_message(self, frm, payload):
        kind = payload[0]
        if kind == "ping":
            self.finish(None)
        else:
            raise AssertionError(payload)
"""
    flow = flow_of_source(source)
    assert flow.sent_kinds == flow.handled_kinds == {"ping"}


def test_wildcard_else_arm_is_recorded():
    source = """
class LenientProcess:
    def on_message(self, frm, payload):
        kind = payload[0]
        if kind == "ping":
            self.finish(None)
        else:
            self.handle_control(frm, payload)
"""
    flow = flow_of_source(source)
    assert flow.wildcard


def test_helper_sends_reach_responds_through_call_graph():
    source = """
class RelayProcess:
    def on_message(self, frm, payload):
        kind = payload[0]
        if kind == "ask":
            self._answer(frm)
        elif kind == "tell":
            self.finish(None)
        else:
            raise AssertionError(payload)

    def _answer(self, frm):
        self.send(frm, ("tell",), tag="flood")

    def on_start(self):
        self.send(0, ("ask",), tag="flood")
"""
    flow = flow_of_source(source)
    assert flow.sent_kinds == flow.handled_kinds == {"ask", "tell"}
    assert flow.graph()["ask"].responds == {"tell"}


# --------------------------------------------------------------------- #
# Exporters: deterministic DOT / ASCII
# --------------------------------------------------------------------- #


def test_exporters_are_deterministic():
    flows = [_flow_of_module(m) for m in PROTOCOL_MODULES]
    dot_a, dot_b = flow_to_dot(flows), flow_to_dot(flows)
    assert dot_a == dot_b
    assert dot_a.startswith("digraph message_flow {")
    for flow in flows:
        assert flow_to_ascii(flow) == flow_to_ascii(flow)


def test_ascii_export_shape():
    text = flow_to_ascii(_flow_of_module("repro.protocols.mst_ghs"))
    assert text.endswith("\n")
    for kind in sorted(GHS_KINDS):
        assert f"[{kind}]" in text
    assert "GhsProcess._try" in text


def test_ascii_export_empty_module():
    text = flow_to_ascii(flow_of_source("x = 1\n", path="empty.py"))
    assert "no literal-kind message traffic" in text


def test_dot_export_contains_response_edges():
    dot = flow_to_dot([_flow_of_module("repro.protocols.mst_ghs")])
    assert '"repro.protocols.mst_ghs:connect" -> ' \
           '"repro.protocols.mst_ghs:initiate";' in dot
