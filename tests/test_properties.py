"""Cross-cutting property-based tests (hypothesis) on core invariants."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.covers import coarsen_cover, max_cover_degree, subsumes
from repro.graphs import (
    WeightedGraph,
    dijkstra,
    mst_weight,
    random_connected_graph,
    tree_distances,
)
from repro.sim import Network, Process, UniformDelay
from repro.synch import check_causality, next_multiple, normalize_graph, power
from repro.synch.clock_gamma import run_gamma_star


# --------------------------------------------------------------------- #
# Simulator accounting invariants
# --------------------------------------------------------------------- #


class ChatterProcess(Process):
    """Sends a scripted number of messages of scripted sizes."""

    def __init__(self, script):
        self.script = script  # list of (neighbor_index, size)

    def on_start(self):
        nbrs = self.neighbors()
        for idx, size in self.script:
            self.send(nbrs[idx % len(nbrs)], "x", size=size)

    def on_message(self, frm, payload):
        pass


@settings(max_examples=40, deadline=None)
@given(
    st.integers(3, 8),
    st.lists(
        st.tuples(st.integers(0, 10), st.floats(0.25, 4.0)),
        min_size=0, max_size=12,
    ),
    st.integers(0, 100),
)
def test_comm_cost_is_exact_sum_of_weighted_sizes(n, script, seed):
    g = random_connected_graph(n, n, seed=seed)
    per_node = {v: script if v == 0 else [] for v in g.vertices}
    net = Network(g, lambda v: ChatterProcess(per_node[v]))
    result = net.run()
    nbrs = g.neighbors(0)
    expected = sum(
        g.weight(0, nbrs[idx % len(nbrs)]) * size for idx, size in script
    )
    assert result.comm_cost == pytest.approx(expected)
    assert result.message_count == len(script)


class FifoRecorder(Process):
    def __init__(self, count):
        self.count = count
        self.received = []

    def on_start(self):
        if self.node_id == 0:
            for i in range(self.count):
                self.send(self.neighbors()[0], i)

    def on_message(self, frm, payload):
        self.received.append(payload)


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 30), st.integers(0, 10_000))
def test_channels_are_fifo_under_random_delays(count, seed):
    g = WeightedGraph([(0, 1, 5.0)])
    net = Network(g, lambda v: FifoRecorder(count),
                  delay=UniformDelay(), seed=seed)
    result = net.run()
    assert result.processes[1].received == list(range(count))


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 20), st.integers(0, 1000), st.booleans())
def test_serialized_time_at_least_pipelined(count, seed, serialize):
    """Serialization can only delay deliveries, never speed them up."""
    g = WeightedGraph([(0, 1, 3.0)])
    r_pipe = Network(
        g, lambda v: FifoRecorder(count), delay=UniformDelay(), seed=seed
    ).run()
    r_ser = Network(
        g, lambda v: FifoRecorder(count), delay=UniformDelay(), seed=seed,
        serialize=True,
    ).run()
    assert r_ser.time >= r_pipe.time - 1e-9
    assert r_ser.processes[1].received == r_pipe.processes[1].received


# --------------------------------------------------------------------- #
# Coarsening on arbitrary random covers (Thm 1.1 beyond path covers)
# --------------------------------------------------------------------- #


@settings(max_examples=30, deadline=None)
@given(st.integers(4, 20), st.integers(2, 25), st.integers(1, 4),
       st.integers(0, 10_000))
def test_coarsen_arbitrary_covers(universe, clusters, k, seed):
    rng = random.Random(seed)
    initial = []
    for _ in range(clusters):
        size = rng.randint(1, universe)
        initial.append(frozenset(rng.sample(range(universe), size)))
    out = coarsen_cover(initial, k=k)
    cover = [cc.vertices for cc in out]
    assert subsumes(cover, initial)
    members = sorted(i for cc in out for i in cc.kernel_members)
    assert members == list(range(clusters))
    m = len(initial)
    bound = m ** (1.0 / k) * (math.log(m) + 1.0) + 1.0 if m > 1 else 1.0
    assert max_cover_degree(cover) <= bound + 1e-9


# --------------------------------------------------------------------- #
# Normalization arithmetic (Definitions 4.6 / 4.7)
# --------------------------------------------------------------------- #


@settings(max_examples=100, deadline=None)
@given(st.integers(1, 10**6))
def test_power_properties(w):
    p = power(w)
    assert p >= w
    assert p < 2 * w or w == p == 1 or p == w
    assert p & (p - 1) == 0  # a power of two


@settings(max_examples=100, deadline=None)
@given(st.integers(0, 10**6), st.integers(0, 20))
def test_next_multiple_properties(t, i):
    m = 1 << i
    nm = next_multiple(t, m)
    assert nm >= t
    assert nm % m == 0
    assert nm - t < m


@settings(max_examples=25, deadline=None)
@given(st.integers(4, 15), st.integers(0, 15), st.integers(0, 1000))
def test_normalize_graph_distance_distortion(n, extra, seed):
    """Normalization at most doubles every distance (w <= power(w) < 2w)."""
    g = random_connected_graph(n, extra, seed=seed)
    ng = normalize_graph(g)
    d, _ = dijkstra(g, 0)
    dn, _ = dijkstra(ng, 0)
    for v in g.vertices:
        assert d[v] <= dn[v] < 2 * d[v] or d[v] == dn[v] == 0


# --------------------------------------------------------------------- #
# Clock synchronizer causality as a property
# --------------------------------------------------------------------- #


@settings(max_examples=10, deadline=None)
@given(st.integers(6, 14), st.integers(2, 10), st.integers(0, 1000))
def test_gamma_star_causality_property(n, extra, seed):
    g = random_connected_graph(n, extra, seed=seed, max_weight=7)
    stats = run_gamma_star(g, 3, delay=UniformDelay(), seed=seed)
    check_causality(g, stats)


# --------------------------------------------------------------------- #
# SLT subgraph invariants
# --------------------------------------------------------------------- #


@settings(max_examples=25, deadline=None)
@given(st.integers(3, 20), st.integers(0, 25), st.integers(0, 1000),
       st.floats(0.5, 8.0))
def test_slt_subgraph_invariants(n, extra, seed, q):
    from repro.core import shallow_light_tree

    g = random_connected_graph(n, extra, seed=seed)
    res = shallow_light_tree(g, 0, q)
    # G' = MST + added paths: weight <= V + (2/q) V (Lemma 2.4's estimate
    # applies to G' as well, before the final SPT prunes it).
    v = mst_weight(g)
    assert res.subgraph.total_weight() <= (1 + 2 / q) * v + 1e-6
    # The output tree is a subgraph of G' and of G.
    for a, b, w in res.tree.edges():
        assert res.subgraph.has_edge(a, b)
        assert g.weight(a, b) == w
    # Depth of any vertex in T equals its distance in G' (T is G''s SPT).
    dist_gp, _ = dijkstra(res.subgraph, 0)
    depths = tree_distances(res.tree, 0)
    assert depths == pytest.approx(dist_gp)


# --------------------------------------------------------------------- #
# Weighted-synchronous semantics: delivery at exactly send + w(e)
# --------------------------------------------------------------------- #


from repro.sim import SynchronousProtocol, SynchronousRunner  # noqa: E402


class _EchoRecorder(SynchronousProtocol):
    """Sends one message per neighbor at pulse 0; records arrival pulses."""

    def __init__(self):
        self.arrivals = []

    def on_pulse(self, pulse, inbox):
        for frm, payload in inbox:
            self.arrivals.append((frm, payload, pulse))
        if pulse == 0:
            for v in self.neighbors():
                self.send(v, ("stamp", self.node_id))
        if pulse >= 40:
            self.finish(None)


@settings(max_examples=20, deadline=None)
@given(st.integers(3, 12), st.integers(0, 12), st.integers(0, 500))
def test_synchronous_delivery_exactly_at_send_plus_weight(n, extra, seed):
    g = random_connected_graph(n, extra, seed=seed, max_weight=8)
    runner = SynchronousRunner(g, lambda v: _EchoRecorder())
    runner.run(max_pulses=100)
    for v, proto in runner.protocols.items():
        for frm, (_k, origin), pulse in proto.arrivals:
            assert origin == frm
            assert pulse == int(g.weight(frm, v))


# --------------------------------------------------------------------- #
# Delay-model sensitivity: comm is delay-invariant for protocols whose
# message pattern is deterministic; time scales with the delays.
# --------------------------------------------------------------------- #


def test_mst_centr_comm_invariant_time_scales():
    from repro.protocols import run_mst_centr
    from repro.sim import MaximalDelay, ScaledDelay

    g = random_connected_graph(15, 20, seed=31)
    runs = {}
    for name, model in (
        ("zero", ScaledDelay(0.0)),
        ("half", ScaledDelay(0.5)),
        ("full", MaximalDelay()),
    ):
        res, tree = run_mst_centr(g, 0, delay=model)
        runs[name] = res
    # The phase structure is deterministic: identical message counts and
    # communication cost under every delay assignment.
    costs = {r.comm_cost for r in runs.values()}
    counts = {r.message_count for r in runs.values()}
    assert len(costs) == 1 and len(counts) == 1
    # Time scales (exactly) linearly with the uniform delay factor.
    assert runs["zero"].time == 0.0
    assert runs["half"].time == pytest.approx(runs["full"].time / 2)


def test_tree_broadcast_comm_invariant():
    from repro.graphs import prim_mst
    from repro.protocols import run_tree_broadcast
    from repro.sim import ScaledDelay

    g = random_connected_graph(20, 25, seed=32)
    t = prim_mst(g)
    costs = set()
    for f in (0.0, 0.3, 1.0):
        r = run_tree_broadcast(t, g.vertices[0], "x", delay=ScaledDelay(f))
        costs.add(r.comm_cost)
    assert len(costs) == 1
