"""FaultPlan / CrashWindow JSON round-trip and validation."""

import json

import pytest

from repro.faults import CrashWindow, FaultPlan


# --------------------------------------------------------------------- #
# CrashWindow
# --------------------------------------------------------------------- #

def test_crash_window_round_trip():
    cw = CrashWindow(3, 2.0, 9.0)
    assert CrashWindow.from_dict(cw.to_dict()) == cw


def test_crash_window_permanent_round_trip():
    cw = CrashWindow("a", 1.0, None)
    d = cw.to_dict()
    assert d["end"] is None
    assert CrashWindow.from_dict(d) == cw


def test_crash_window_inf_end_normalizes_to_none():
    assert CrashWindow(0, 1.0, float("inf")).to_dict()["end"] is None


def test_crash_window_inverted_raises():
    with pytest.raises(ValueError, match="inverted or empty"):
        CrashWindow(0, 5.0, 3.0)


def test_crash_window_empty_raises():
    # start == end used to pass silently as a zero-length no-op window.
    with pytest.raises(ValueError, match="inverted or empty"):
        CrashWindow(0, 5.0, 5.0)


def test_crash_window_negative_start_raises():
    with pytest.raises(ValueError, match="before time 0"):
        CrashWindow(0, -1.0, 2.0)


def test_crash_window_triple_form_validated_by_plan():
    # Plain (node, start, end) triples are normalized through CrashWindow,
    # so they get the same validation.
    with pytest.raises(ValueError, match="inverted or empty"):
        FaultPlan(crashes=[(0, 5.0, 5.0)])


def test_crash_window_unknown_key_raises():
    with pytest.raises(ValueError, match="unknown CrashWindow keys"):
        CrashWindow.from_dict({"node": 0, "start": 1.0, "stop": 2.0})


def test_crash_window_missing_field_raises():
    with pytest.raises(ValueError, match="needs node and start"):
        CrashWindow.from_dict({"node": 0})


# --------------------------------------------------------------------- #
# FaultPlan
# --------------------------------------------------------------------- #

def test_plan_round_trip_preserves_everything():
    plan = FaultPlan(
        drop=0.1, duplicate=0.05, corrupt=0.2, reorder=0.15,
        reorder_bound=2.5, seed=42,
        edges=[(1, 0), (2, 3)],
        crashes=(CrashWindow(2, 5.0, 9.0), CrashWindow(0, 1.0, None)),
    )
    d = plan.to_dict()
    back = FaultPlan.from_dict(d)
    assert back.to_dict() == d
    assert back.drop == plan.drop
    assert back.seed == plan.seed
    assert back._edge_set == plan._edge_set
    assert set(back.crashes) == set(plan.crashes)


def test_plan_dict_always_lists_every_rate():
    d = FaultPlan().to_dict()
    for name in ("drop", "duplicate", "corrupt", "reorder"):
        assert d[name] == 0.0
    assert "edges" not in d  # no restriction -> key omitted
    assert "crashes" not in d


def test_plan_dict_is_canonical_under_input_order():
    a = FaultPlan(drop=0.1, edges=[(2, 3), (0, 1)],
                  crashes=[CrashWindow(1, 2.0, 4.0), CrashWindow(0, 1.0, 3.0)])
    b = FaultPlan(drop=0.1, edges=[(1, 0), (3, 2)],
                  crashes=[CrashWindow(0, 1.0, 3.0), CrashWindow(1, 2.0, 4.0)])
    assert (json.dumps(a.to_dict(), sort_keys=True)
            == json.dumps(b.to_dict(), sort_keys=True))


def test_plan_json_round_trip_through_text():
    plan = FaultPlan(drop=0.2, seed=7, crashes=(CrashWindow(4, 3.0, None),))
    text = json.dumps(plan.to_dict(), sort_keys=True)
    back = FaultPlan.from_dict(json.loads(text))
    assert json.dumps(back.to_dict(), sort_keys=True) == text


def test_plan_negative_rate_raises():
    with pytest.raises(ValueError, match="outside"):
        FaultPlan(drop=-0.2)


def test_plan_from_dict_revalidates():
    with pytest.raises(ValueError, match="outside"):
        FaultPlan.from_dict({"drop": 1.5})
    with pytest.raises(ValueError, match="inverted or empty"):
        FaultPlan.from_dict(
            {"crashes": [{"node": 0, "start": 9.0, "end": 2.0}]}
        )


def test_plan_unknown_key_raises():
    with pytest.raises(ValueError, match="unknown FaultPlan keys"):
        FaultPlan.from_dict({"drpo": 0.1})


def test_scripted_plan_is_not_serializable():
    plan = FaultPlan(script=lambda frm, to, i: None)
    with pytest.raises(ValueError, match="scripted"):
        plan.to_dict()


def test_replace_revalidates():
    plan = FaultPlan(drop=0.1)
    assert plan.replace(drop=0.5).drop == 0.5
    assert plan.drop == 0.1  # original untouched
    with pytest.raises(ValueError, match="outside"):
        plan.replace(drop=1.5)


def test_replace_recomputes_edge_set():
    plan = FaultPlan(drop=0.1, edges=[(0, 1)])
    widened = plan.replace(edges=None)
    assert widened._edge_set is None
    narrowed = plan.replace(edges=[(2, 3)])
    assert narrowed._edge_set == frozenset({frozenset({2, 3})})


def test_empty_edge_restriction_round_trips():
    # edges=[] means "no faultable edges" and must not collapse to None
    # ("all edges") through serialization.
    plan = FaultPlan(drop=0.3, edges=[])
    d = plan.to_dict()
    assert d["edges"] == []
    assert FaultPlan.from_dict(d)._edge_set == frozenset()
