"""Coverage for remaining corners: orders, hybrid race edge cases,
clock stats, in-synch enforcement, tree-cover helpers."""

import pytest

from repro.covers import build_tree_edge_cover
from repro.graphs import (
    WeightedGraph,
    mst_weight,
    random_connected_graph,
    ring_graph,
    shortest_path_tree,
)
from repro.protocols.full_info import dijkstra_order, prim_order
from repro.protocols.hybrid import race
from repro.sim import SynchronousProtocol, SynchronousRunner
from repro.synch.clock_base import ClockStats


# --------------------------------------------------------------------- #
# Addition orders (full-information preprocessing)
# --------------------------------------------------------------------- #


def test_prim_order_builds_mst_incrementally():
    g = random_connected_graph(15, 25, seed=1)
    order = prim_order(g, 0)
    assert len(order) == g.num_vertices - 1
    in_tree = {0}
    total = 0.0
    for u, v in order:
        assert u in in_tree and v not in in_tree
        in_tree.add(v)
        total += g.weight(u, v)
    assert total == pytest.approx(mst_weight(g))


def test_dijkstra_order_matches_spt():
    g = random_connected_graph(15, 25, seed=2)
    order = dijkstra_order(g, 0)
    spt = shortest_path_tree(g, 0)
    tree_edges = {frozenset((u, v)) for u, v, _ in spt.edges()}
    assert {frozenset(e) for e in order} == tree_edges
    # Vertices appear in nondecreasing distance order.
    from repro.graphs import dijkstra

    dist, _ = dijkstra(g, 0)
    dists = [dist[v] for _, v in order]
    assert dists == sorted(dists)


def test_dijkstra_order_disconnected_raises():
    g = WeightedGraph([(0, 1, 1.0)], vertices=[2])
    with pytest.raises(ValueError):
        dijkstra_order(g, 0)


# --------------------------------------------------------------------- #
# Hybrid race corner cases
# --------------------------------------------------------------------- #


def test_race_single_algorithm():
    outcome = race(
        {"only": lambda b: (min(b, 20.0), 1.0, "ok" if b >= 20 else None)},
        initial_budget=1.0,
    )
    assert outcome.winner == "only"
    assert outcome.rounds == 6  # budgets 1,2,4,8,16,32


def test_race_first_round_win_costs_nothing_extra():
    outcome = race(
        {"a": lambda b: (3.0, 1.0, "done"), "b": lambda b: (99.0, 1.0, None)},
        initial_budget=10.0,
    )
    assert outcome.winner == "a"
    assert outcome.total_comm_cost == 3.0
    assert outcome.rounds == 1


def test_race_history_records_all_attempts():
    calls = []

    def attempt(name, threshold):
        def fn(budget):
            calls.append((name, budget))
            done = budget >= threshold
            return min(budget, threshold), 0.0, ("x" if done else None)

        return fn

    outcome = race({"a": attempt("a", 100.0), "b": attempt("b", 12.0)},
                   initial_budget=4.0)
    assert outcome.winner == "b"
    # budgets: 4 (both fail), 8 (both fail), 16 (a fails, b completes)
    assert [h[0] for h in outcome.history] == ["a", "b", "a", "b", "a", "b"]
    assert outcome.history[-1][3] is True
    assert [h[1] for h in outcome.history if h[0] == "b"] == [4.0, 8.0, 16.0]


# --------------------------------------------------------------------- #
# ClockStats arithmetic
# --------------------------------------------------------------------- #


class _FakeRun:
    def __init__(self, times, cost):
        class _P:
            def __init__(self, t):
                self.pulse_times = t

        self.processes = {i: _P(t) for i, t in enumerate(times)}
        self.comm_cost = cost


def test_clock_stats_delays():
    run = _FakeRun([[0.0, 2.0, 5.0], [0.0, 1.0, 6.0]], cost=10.0)
    stats = ClockStats(run, target=2)
    assert stats.max_pulse_delay == 5.0   # 6.0 - 1.0
    assert stats.comm_cost_per_pulse == 5.0
    assert "max_delay" in str(stats)


def test_clock_stats_empty():
    run = _FakeRun([[0.0]], cost=0.0)
    stats = ClockStats(run, target=0)
    assert stats.max_pulse_delay == 0.0


# --------------------------------------------------------------------- #
# In-synch enforcement
# --------------------------------------------------------------------- #


class OffBeatSender(SynchronousProtocol):
    """Deliberately violates Definition 4.2 (sends at pulse 1 on w=2)."""

    def on_pulse(self, pulse, inbox):
        if pulse == 1 and self.node_id == 0:
            self.send(1, "late")
        if pulse >= 3:
            self.finish(None)


def test_sync_runner_flags_out_of_synch_sends():
    g = WeightedGraph([(0, 1, 2.0)])
    runner = SynchronousRunner(g, lambda v: OffBeatSender(),
                               require_in_synch=True)
    with pytest.raises(RuntimeError, match="not in synch"):
        runner.run(max_pulses=10)


def test_sync_runner_permissive_by_default():
    g = WeightedGraph([(0, 1, 2.0)])
    runner = SynchronousRunner(g, lambda v: OffBeatSender())
    result = runner.run(max_pulses=10)
    assert result.message_count == 1


# --------------------------------------------------------------------- #
# Tree edge-cover helpers
# --------------------------------------------------------------------- #


def test_trees_of_vertex():
    g = ring_graph(10)
    tec = build_tree_edge_cover(g)
    for v in g.vertices:
        idxs = tec.trees_of_vertex(v)
        assert idxs, f"{v} in no tree"
        for i in idxs:
            assert v in tec.trees[i].vertices


def test_cover_tree_depths_consistent():
    g = random_connected_graph(15, 20, seed=3)
    tec = build_tree_edge_cover(g)
    assert tec.max_depth == max(t.depth for t in tec.trees)
    assert tec.max_edge_load == max(
        len(v) for v in tec.edge_load.values()
    )
