"""Unit tests for the fault subsystem: plans, crashes, reliable transport."""

import pytest

from repro.faults import (
    ACK_TAG,
    RETRY_TAG,
    CorruptedPayload,
    CrashWindow,
    FaultPlan,
    ReliableProcess,
    reliable_factory,
    reliability_overhead,
    run_chaos,
)
from repro.graphs import WeightedGraph, path_graph, random_connected_graph
from repro.protocols.broadcast import FloodProcess, run_flood
from repro.protocols.mst_ghs import run_mst_ghs
from repro.sim import Network, Process


# --------------------------------------------------------------------- #
# FaultPlan construction and validation
# --------------------------------------------------------------------- #


def test_plan_validates_probabilities():
    with pytest.raises(ValueError):
        FaultPlan(drop=1.5)
    with pytest.raises(ValueError):
        FaultPlan(corrupt=-0.1)
    with pytest.raises(ValueError):
        FaultPlan(reorder_bound=-1.0)


def test_plan_validates_crash_windows():
    with pytest.raises(ValueError):
        FaultPlan(crashes=[(0, 10.0, 5.0)])
    with pytest.raises(ValueError):
        FaultPlan(crashes=[(0, -5.0, 3.0)])
    plan = FaultPlan(crashes=[(0, 5.0, 10.0)])
    assert plan.crashes[0] == CrashWindow(0, 5.0, 10.0)


def test_crash_window_for_unknown_node_rejected():
    g = path_graph(2)
    net = Network(g, lambda v: FloodProcess(v == 0),
                  faults=FaultPlan(crashes=[(99, 0.0, 1.0)]))
    with pytest.raises(ValueError):
        net.run()


def test_random_crashes_constructor_is_deterministic_and_spares():
    nodes = list(range(10))
    a = FaultPlan.random_crashes(nodes, count=3, horizon=50.0,
                                 downtime=5.0, seed=4, spare={0})
    b = FaultPlan.random_crashes(nodes, count=3, horizon=50.0,
                                 downtime=5.0, seed=4, spare={0})
    assert a.crashes == b.crashes
    assert len(a.crashes) == 3
    assert all(cw.node != 0 for cw in a.crashes)
    with pytest.raises(ValueError):
        FaultPlan.random_crashes(nodes, count=11, horizon=1.0, downtime=1.0)


# --------------------------------------------------------------------- #
# Message faults on the raw network
# --------------------------------------------------------------------- #


class Recorder(Process):
    """Counts deliveries; node 0 sends ``burst`` messages to node 1."""

    def __init__(self, burst=0):
        self.burst = burst
        self.received = []

    def on_start(self):
        for i in range(self.burst):
            self.send(1, i, tag="burst")

    def on_message(self, frm, payload):
        self.received.append(payload)


def test_scripted_drop_loses_exactly_the_chosen_transmission():
    g = WeightedGraph([(0, 1, 2.0)])
    plan = FaultPlan(script=lambda u, v, i: "drop" if i == 1 else "deliver")
    net = Network(g, lambda v: Recorder(burst=3 if v == 0 else 0),
                  faults=plan)
    result = net.run()
    assert net.processes[1].received == [0, 2]
    # The dropped transmission still cost w(e): the sender paid for it.
    assert result.comm_cost == 6.0
    assert result.metrics.fault_counts["drop"] == 1


def test_duplicate_delivers_twice_but_costs_once():
    g = WeightedGraph([(0, 1, 3.0)])
    plan = FaultPlan(script=lambda u, v, i: "duplicate")
    net = Network(g, lambda v: Recorder(burst=1 if v == 0 else 0),
                  faults=plan)
    result = net.run()
    assert net.processes[1].received == [0, 0]
    assert result.comm_cost == 3.0  # network duplicates are free
    assert result.message_count == 1


def test_corrupt_wraps_payload():
    g = WeightedGraph([(0, 1, 1.0)])
    plan = FaultPlan(script=lambda u, v, i: "corrupt")
    net = Network(g, lambda v: Recorder(burst=1 if v == 0 else 0),
                  faults=plan)
    net.run()
    (got,) = net.processes[1].received
    assert isinstance(got, CorruptedPayload)
    assert got.original == 0


def test_reorder_can_violate_fifo_within_bound():
    g = WeightedGraph([(0, 1, 4.0)])
    # First transmission is held back by a reorder, the second sails through.
    plan = FaultPlan(
        script=lambda u, v, i: "reorder" if i == 0 else "deliver",
        reorder=1.0, reorder_bound=1.0, seed=3,
    )
    net = Network(g, lambda v: Recorder(burst=2 if v == 0 else 0),
                  faults=plan)
    net.run()
    received = net.processes[1].received
    assert sorted(received) == [0, 1]
    assert received == [1, 0]  # overtaken: FIFO violated, detectably


def test_edge_filter_restricts_faults():
    g = path_graph(3)
    plan = FaultPlan(drop=1.0, edges=[(1, 2)], seed=0)
    result, _tree = run_flood(g, 0, faults=plan)
    # Edge (0,1) is clean, so node 1 hears the flood; (1,2) eats everything.
    assert result.processes[1].ctx.is_finished
    assert not result.processes[2].ctx.is_finished
    assert result.status == "quiescent"


# --------------------------------------------------------------------- #
# Crash / recover semantics
# --------------------------------------------------------------------- #


def test_messages_to_crashed_node_are_lost_and_timers_deferred():
    g = WeightedGraph([(0, 1, 1.0)])
    fired = []

    class TimerNode(Process):
        def on_start(self):
            if self.node_id == 1:
                self.set_timer(2.0, lambda: fired.append(self.now))

    plan = FaultPlan(crashes=[(1, 0.0, 10.0)])
    net = Network(g, lambda v: TimerNode(), faults=plan)
    net.run()
    # The timer expired at t=2 during the outage; it fired at recovery.
    assert fired == [10.0]


def test_crashed_node_drops_deliveries_and_recovers_with_state():
    g = path_graph(3)
    # Node 1 is down while the flood happens, up again later; without a
    # transport the flood dies at node 1 — detectably (stall).
    plan = FaultPlan(crashes=[CrashWindow(1, 0.0, 100.0)])
    result, _ = run_flood(g, 0, faults=plan)
    assert not result.processes[1].ctx.is_finished
    assert result.metrics.fault_counts["lost_in_crash"] >= 1
    assert result.metrics.fault_counts["crash"] == 1
    assert result.metrics.fault_counts["recover"] == 1


def test_reliable_transport_rides_out_a_crash_window():
    g = path_graph(3)
    plan = FaultPlan(crashes=[CrashWindow(1, 0.0, 100.0)])
    result, tree = run_flood(g, 0, faults=plan, reliable=True)
    assert all(p.ctx.is_finished for p in result.processes.values())
    assert tree.is_tree()
    # Completion had to wait for the recovery.
    assert result.metrics.last_finish_time >= 100.0


def test_on_recover_hook_called():
    g = path_graph(2)
    recovered = []

    class Hooked(Process):
        def on_recover(self):
            recovered.append(self.node_id)

    plan = FaultPlan(crashes=[(1, 1.0, 5.0)])
    net = Network(g, lambda v: Hooked(), faults=plan)
    net.run()
    assert recovered == [1]


# --------------------------------------------------------------------- #
# Reliable transport mechanics
# --------------------------------------------------------------------- #


def test_transport_validates_options():
    with pytest.raises(ValueError):
        ReliableProcess(Recorder(), timeout_factor=2.0)
    with pytest.raises(ValueError):
        ReliableProcess(Recorder(), max_retries=0)


def test_fault_free_transport_never_retransmits():
    g = random_connected_graph(10, 14, seed=1)
    result, _ = run_flood(g, g.vertices[0], reliable=True)
    m = result.metrics
    assert m.count_by_tag.get(RETRY_TAG, 0) == 0
    assert m.count_by_tag.get(ACK_TAG, 0) > 0
    overhead = reliability_overhead(m)
    assert overhead["retry_cost"] == 0.0
    assert overhead["total_overhead"] == overhead["ack_cost"]


def test_retransmission_recovers_scripted_loss_and_is_tagged():
    g = WeightedGraph([(0, 1, 5.0)])
    # Drop the first data transmission on (0, 1); the retry gets through.
    plan = FaultPlan(script=lambda u, v, i: "drop" if (u, v) == (0, 1)
                     and i == 0 else "deliver")
    factory = reliable_factory(
        lambda v: FloodProcess(v == 0, "x"), timeout_factor=2.5
    )
    net = Network(g, factory, faults=plan)
    result = net.run()
    assert net.processes[1].ctx.is_finished
    m = result.metrics
    assert m.count_by_tag[RETRY_TAG] == 1
    # Cost-sensitive accounting: the retry cost another w(e) = 5.
    assert m.cost_by_tag[RETRY_TAG] == 5.0


def test_transport_discards_corrupted_frames_and_recovers():
    g = WeightedGraph([(0, 1, 2.0)])
    plan = FaultPlan(script=lambda u, v, i: "corrupt" if (u, v) == (0, 1)
                     and i == 0 else "deliver")
    result, _ = run_flood(g, 0, faults=plan, reliable=True)
    proc = result.processes[1]
    assert proc.ctx.is_finished
    assert proc.payload == "wake-up"  # the clean retransmission, not garbage
    assert result.metrics.count_by_tag[RETRY_TAG] >= 1


def test_transport_suppresses_duplicates_and_restores_fifo():
    g = WeightedGraph([(0, 1, 4.0)])
    plan = FaultPlan(
        script=lambda u, v, i: ("reorder" if i == 0 else "duplicate")
        if (u, v) == (0, 1) else "deliver",
        reorder_bound=1.0, seed=3,
    )
    factory = reliable_factory(lambda v: Recorder(burst=2 if v == 0 else 0))
    net = Network(g, factory, faults=plan)
    net.run()
    inner = net.processes[1].inner
    assert inner.received == [0, 1]  # exactly once each, in send order


def test_transport_gives_up_after_max_retries():
    g = WeightedGraph([(0, 1, 1.0)])
    plan = FaultPlan(drop=1.0, edges=[(0, 1)], seed=0)
    factory = reliable_factory(lambda v: FloodProcess(v == 0, "x"),
                               max_retries=3, max_backoff_doublings=1)
    net = Network(g, factory, faults=plan)
    result = net.run()
    assert net.processes[0].gave_up
    assert not net.processes[1].ctx.is_finished
    assert result.metrics.count_by_tag[RETRY_TAG] == 3
    assert result.status == "quiescent"  # drained, not hung


def test_wrapper_delegates_inner_attributes():
    g = path_graph(3)
    result, tree = run_flood(g, 0, reliable=True)
    # run_flood reads proc.parent through the wrapper to build the tree.
    assert tree.is_tree()
    proc = result.processes[1]
    assert isinstance(proc, ReliableProcess)
    assert proc.parent == 0  # delegated to the inner FloodProcess
    with pytest.raises(AttributeError):
        proc.no_such_attribute


# --------------------------------------------------------------------- #
# Determinism (acceptance criterion)
# --------------------------------------------------------------------- #


def test_identical_plan_and_seed_replay_exactly():
    g = random_connected_graph(12, 18, seed=5)

    def one_run():
        plan = FaultPlan(drop=0.15, duplicate=0.05, corrupt=0.05,
                         reorder=0.05, seed=21)
        result, tree = run_mst_ghs(g, faults=plan, reliable=True, seed=3)
        edges = (sorted(map(sorted, tree.edges()))
                 if tree is not None else None)
        return result.metrics.summary(), edges

    first, second = one_run(), one_run()
    assert first == second


def test_shared_plan_instance_replays_via_reset():
    g = path_graph(4)
    plan = FaultPlan(script=lambda u, v, i: "drop" if i == 0 else "deliver")
    r1, _ = run_flood(g, 0, faults=plan, reliable=True)
    r2, _ = run_flood(g, 0, faults=plan, reliable=True)
    assert r1.metrics.summary() == r2.metrics.summary()


# --------------------------------------------------------------------- #
# RunResult status surfacing (satellite)
# --------------------------------------------------------------------- #


class Chain(Process):
    def on_start(self):
        if self.node_id == 0:
            self.send(1, "tok")

    def on_message(self, frm, payload):
        nxt = self.node_id + 1
        if nxt in self.ctx.weights:
            self.send(nxt, payload)
        else:
            self.finish("end")


def test_run_result_status_budget():
    g = path_graph(6, weight=10.0)
    result = Network(g, lambda v: Chain(), comm_budget=30.0).run()
    assert result.status == "budget_exhausted"
    assert result.aborted


def test_run_result_status_max_time_no_event_past_deadline():
    class Ticker(Process):
        def on_start(self):
            if self.node_id == 0:
                self.send(1, 0)

        def on_message(self, frm, k):
            self.send(frm, k + 1)

    g = WeightedGraph([(0, 1, 2.0)])
    result = Network(g, lambda v: Ticker()).run(max_time=19.0)
    assert result.status == "max_time"
    assert result.aborted
    # Off-by-one fixed: the event at t=20 never ran.
    assert result.time <= 19.0


def test_run_result_status_max_time_inclusive_at_deadline():
    g = WeightedGraph([(0, 1, 2.0)])
    net = Network(g, lambda v: Chain())
    result = net.run(max_time=2.0)  # delivery at exactly t=2 still runs
    assert result.time == 2.0


def test_run_result_status_stopped_and_quiescent():
    g = path_graph(3)
    quiescent = Network(g, lambda v: Chain()).run()
    assert quiescent.status == "quiescent"
    assert not quiescent.aborted
    stopped = Network(g, lambda v: Chain()).run(
        stop_when=lambda n: n.metrics.message_count >= 1
    )
    assert stopped.status == "stopped"
    assert not stopped.aborted


# --------------------------------------------------------------------- #
# Chaos runner classification
# --------------------------------------------------------------------- #


def test_run_chaos_classifies_wrong_answers():
    g = path_graph(3)
    out = run_chaos(g, lambda v: FloodProcess(v == 0, "x"), reliable=False,
                    answer=lambda r: "not-it", expect="the-answer")
    assert out.status == "wrong"
    assert out.silent_failure


def test_run_chaos_timeout_is_detectable():
    class Ticker(Process):
        def on_start(self):
            self.send(self.neighbors()[0], 0)

        def on_message(self, frm, k):
            self.send(frm, k + 1)

    g = WeightedGraph([(0, 1, 1.0)])
    out = run_chaos(g, lambda v: Ticker(), reliable=False,
                    watchdog_time=50.0)
    assert out.status == "timeout"
    assert out.detectable_failure


def test_run_chaos_event_storm_reported_not_raised():
    class Storm(Process):
        def on_start(self):
            self.send(self.neighbors()[0], 0)

        def on_message(self, frm, payload):
            self.send(frm, payload)

    g = WeightedGraph([(0, 1, 1.0)])
    out = run_chaos(g, lambda v: Storm(), reliable=False, max_events=100)
    assert out.status == "timeout"
    assert out.error is not None


def test_run_chaos_error_is_detectable():
    class Fragile(Process):
        def on_start(self):
            if self.node_id == 0:
                self.send(1, ("tagged", 1))

        def on_message(self, frm, payload):
            assert payload[0] == "tagged"  # blows up on corrupted frames

    g = path_graph(2)
    plan = FaultPlan(corrupt=1.0, seed=0)
    out = run_chaos(g, lambda v: Fragile(), plan=plan, reliable=False)
    assert out.status == "error"
    assert out.detectable_failure
