"""Shared-memory snapshot lifecycle, fallback, and sweep identity.

The tentpole contract, end to end: a graph published once is swept by
pool workers zero-copy (exactly one build, counted), serial and pooled
row lists are byte-identical under both kernel backends, re-publishing a
mutated graph invalidates the stale segment, ``shutdown_pool()`` unlinks
everything, and a worker process that cannot reach shared memory falls
back to a spec rebuild instead of crashing.  A subprocess leg asserts
the whole dance leaves no ``rshm-*`` files and no resource-tracker or
``BufferError`` noise on stderr.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments.parallel import (
    pool_shm_stats,
    shutdown_pool,
    snapshot_cells,
    snapshot_rows,
    run_snapshot_cell,
    _dispose_pool,
)
from repro.graphs import (
    SnapshotUnavailable,
    lower_bound_flat,
    param_cache,
    random_connected_flat,
    random_connected_graph,
    shm_available,
)
from repro.graphs import shm
from repro.graphs.csr import flat_stripe_stats

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="no shared memory on this platform"
)

REPO = Path(__file__).resolve().parent.parent


@pytest.fixture(autouse=True)
def _clean_shm_state():
    shm.reset_for_tests()
    yield
    shutdown_pool()
    shm.reset_for_tests()


def _segment_exists(name):
    return os.path.exists(f"/dev/shm/{name}")


# --------------------------------------------------------------------- #
# Publisher lifecycle
# --------------------------------------------------------------------- #


def test_publish_attach_unlink_lifecycle():
    flat = random_connected_flat(300, 500, seed=8)
    handle = shm.publish(flat, key="life")
    assert handle.segment is not None
    assert _segment_exists(handle.segment)
    stats = shm.stats()
    assert stats["shm_creates"] == 1
    assert stats["shm_segments"] == 1
    assert stats["shm_bytes"] == flat.nbytes

    # Publisher-side attach resolves to the local FlatGraph (no mapping).
    assert shm.attach(handle) is flat
    assert shm.stats()["shm_local_hits"] == 1

    # Idempotent re-publish: same content, same handle, no new segment.
    assert shm.publish(flat, key="life") == handle
    assert shm.stats()["shm_creates"] == 1

    assert shm.unlink_all() == 1
    assert not _segment_exists(handle.segment)
    assert shm.stats()["shm_segments"] == 0
    assert shm.stats()["shm_bytes"] == 0


def test_version_bump_invalidates_stale_segment():
    g = random_connected_graph(60, 90, seed=5)
    cache = param_cache(g)
    h1 = cache.publish(key="vbump")
    assert _segment_exists(h1.segment)
    g.add_edge(0, 59, 2.5)  # version bump
    h2 = cache.publish(key="vbump")
    assert h2.version == g.version
    assert h2.fingerprint != h1.fingerprint
    assert not _segment_exists(h1.segment), "stale segment must be unlinked"
    assert _segment_exists(h2.segment)
    assert shm.stats()["shm_segments"] == 1


def test_cross_process_attach_is_byte_identical():
    flat = random_connected_flat(400, 900, seed=21)
    handle = shm.publish(flat)
    # Simulate a worker: wipe the local registries so attach() must map
    # the real segment.
    shm._published.clear()
    shm._attached.clear()
    attached = shm.attach(handle)
    assert attached is not flat
    assert shm.stats()["shm_attaches"] == 1
    for mine, theirs in zip(flat.buffers(), attached.buffers(), strict=True):
        assert bytes(mine) == bytes(theirs)
    assert attached.fingerprint == flat.fingerprint
    # Second resolve hits the attachment cache, no second mapping.
    assert shm.attach(handle) is attached
    assert shm.stats()["shm_attaches"] == 1
    # Kernels run directly on the attached (memoryview-backed) buffers.
    assert flat_stripe_stats(attached, 0, 400) == \
        flat_stripe_stats(flat, 0, 400)


def test_attach_unreachable_without_spec_raises():
    flat = random_connected_flat(50, 60, seed=1)
    handle = shm.publish(flat)
    dead = handle.__class__(**{**handle.__dict__, "key": "gone",
                               "segment": "rshm-nonexistent-0-0",
                               "spec": None})
    with pytest.warns(RuntimeWarning), pytest.raises(SnapshotUnavailable):
        shm.attach(dead)


def test_creation_failure_falls_back_and_warns_once(monkeypatch):
    def boom(name, nbytes):
        raise OSError("no space on /dev/shm")

    monkeypatch.setattr(shm, "_create_segment", boom)
    flat = lower_bound_flat(64)
    with pytest.warns(RuntimeWarning, match="falling back"):
        handle = shm.publish(flat, key="degraded")
    assert handle.segment is None
    assert shm.stats()["shm_failures"] == 1
    # Only the first failure warns; later ones just count.
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("error")
        h2 = shm.publish(lower_bound_flat(65), key="degraded2")
    assert h2.segment is None
    assert shm.stats()["shm_failures"] == 2

    # A worker with no segment rebuilds from the generator spec.
    shm._published.clear()
    rebuilt = shm.attach(handle)
    assert shm.stats()["shm_rebuilds"] == 1
    for a, b in zip(rebuilt.buffers(), flat.buffers(), strict=True):
        assert bytes(a) == bytes(b)
    # And the sweep still runs, serially and pooled, with identical rows.
    serial = snapshot_rows(handle, kind="stripe", cell_size=8,
                           force="serial")
    pooled = snapshot_rows(handle, kind="stripe", cell_size=8,
                           force="pool", jobs=2)
    assert serial == pooled


# --------------------------------------------------------------------- #
# Pool integration: one build per sweep, serial == pool
# --------------------------------------------------------------------- #


def test_sweep_one_build_serial_pool_identity(each_backend):
    flat = random_connected_flat(2000, 3000, seed=17)
    handle = shm.publish(flat, key="sweep")
    assert shm.stats()["shm_creates"] == 1

    serial = snapshot_rows(handle, kind="stripe", cell_size=5,
                           force="serial")
    assert len(serial) == 400
    pooled = snapshot_rows(handle, kind="stripe", cell_size=5,
                           force="pool", jobs=2, batch=32)
    assert serial == pooled

    src_serial = snapshot_rows(handle, kind="sources", limit=12,
                               cell_size=3, force="serial")
    src_pooled = snapshot_rows(handle, kind="sources", limit=12,
                               cell_size=3, force="pool", jobs=2)
    assert src_serial == src_pooled

    # Acceptance counters: the parent built/published exactly once;
    # workers attached (or will on demand) and never created or rebuilt.
    assert shm.stats()["shm_creates"] == 1
    workers = pool_shm_stats(2, snapshots=(handle,))
    assert workers, "probe must reach at least one worker"
    for w in workers:
        assert w["shm_creates"] == 0
        assert w["shm_rebuilds"] == 0
        assert w["shm_attaches"] <= 1


def test_snapshot_cells_pin_kernel_and_validate():
    flat = random_connected_flat(30, 40, seed=2)
    handle = shm.publish(flat)
    cells = snapshot_cells(handle, kind="sources", limit=10, cell_size=4)
    assert [(c.lo, c.hi) for c in cells] == [(0, 4), (4, 8), (8, 10)]
    assert all(c.kernel in ("python", "numpy") for c in cells)
    row = run_snapshot_cell(cells[0])
    assert row["kind"] == "sources"
    assert row["sources"] == 4
    with pytest.raises(ValueError):
        snapshot_cells(handle, kind="nope")
    with pytest.raises(ValueError):
        snapshot_cells(handle, cell_size=0)


def test_pool_rebuild_does_not_unlink_segments():
    flat = random_connected_flat(200, 300, seed=3)
    handle = shm.publish(flat, key="keep")
    snapshot_rows(handle, kind="stripe", cell_size=50, force="pool", jobs=2)
    # An internal pool key change (e.g. a different warm spec) disposes
    # the executor but must leave published segments alone.
    _dispose_pool()
    assert _segment_exists(handle.segment)
    # The public teardown unlinks.
    shutdown_pool()
    assert not _segment_exists(handle.segment)


def test_shutdown_pool_unlinks_all_segments():
    handles = [shm.publish(random_connected_flat(100, 150, seed=s),
                           key=f"multi-{s}") for s in (1, 2, 3)]
    assert all(_segment_exists(h.segment) for h in handles)
    snapshot_rows(handles[0], kind="stripe", cell_size=25, force="pool",
                  jobs=2)
    shutdown_pool()
    assert all(not _segment_exists(h.segment) for h in handles)
    assert shm.stats()["shm_segments"] == 0


# --------------------------------------------------------------------- #
# Leak check (fresh interpreter: atexit + resource tracker end to end)
# --------------------------------------------------------------------- #

_LEAK_SCRIPT = """
import os, sys
from repro.graphs import random_connected_flat, shm_available
from repro.graphs import shm
from repro.experiments.parallel import snapshot_rows, shutdown_pool

if not shm_available():
    print("SKIP")
    sys.exit(0)
flat = random_connected_flat(500, 800, seed=12)
handle = shm.publish(flat, key="leakcheck")
serial = snapshot_rows(handle, kind="stripe", cell_size=10, force="serial")
pooled = snapshot_rows(handle, kind="stripe", cell_size=10,
                       force="pool", jobs=2, batch=8)
assert serial == pooled
print("SEGMENT", handle.segment)
# No explicit shutdown: the atexit hooks own the cleanup.
"""


def test_subprocess_leaves_no_segments_or_tracker_noise():
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
    proc = subprocess.run([sys.executable, "-c", _LEAK_SCRIPT],
                          capture_output=True, text=True, env=env,
                          timeout=120)
    assert proc.returncode == 0, proc.stderr
    if "SKIP" in proc.stdout:
        pytest.skip("no shared memory in subprocess")
    segment = proc.stdout.split("SEGMENT", 1)[1].split()[0]
    assert not _segment_exists(segment), "segment outlived the process"
    for noise in ("leaked", "resource_tracker", "BufferError", "Traceback"):
        assert noise not in proc.stderr, proc.stderr
