"""ResultStore: CAS roundtrip, persistence, integrity, FIFO eviction."""

import json

import pytest

from repro.serve import ResultStore, payload_bytes, payload_sha, request_address

CANON, ADDR = request_address(
    {"kind": "chaos", "protocol": "broadcast", "n": 8, "extra_edges": 6,
     "graph_seed": 3, "backend": "python"})
PAYLOAD = {"status": "ok", "rounds": 3, "messages": [1, 2, 3]}


def _addr(i):
    canon, addr = request_address(
        {"kind": "chaos", "protocol": "broadcast", "n": 8, "extra_edges": 6,
         "graph_seed": 3, "fault_seed": i, "backend": "python"})
    return canon, addr


# --------------------------------------------------------------------- #
# Roundtrip + persistence
# --------------------------------------------------------------------- #

@pytest.mark.parametrize("persistent", [True, False])
def test_put_get_roundtrip(tmp_path, persistent):
    store = ResultStore(tmp_path / "cas" if persistent else None)
    assert store.get(ADDR) is None
    env = store.put(ADDR, CANON, PAYLOAD)
    got = store.get(ADDR)
    assert got is not None
    assert got["payload"] == PAYLOAD
    assert got["payload_sha"] == payload_sha(PAYLOAD) == env["payload_sha"]
    assert payload_bytes(got["payload"]) == payload_bytes(PAYLOAD)
    assert ADDR in store and len(store) == 1


def test_put_is_idempotent(tmp_path):
    store = ResultStore(tmp_path / "cas")
    store.put(ADDR, CANON, PAYLOAD)
    store.put(ADDR, CANON, PAYLOAD)
    assert store.puts == 1 and len(store) == 1


def test_persists_across_instances(tmp_path):
    root = tmp_path / "cas"
    ResultStore(root).put(ADDR, CANON, PAYLOAD)
    reopened = ResultStore(root)
    got = reopened.get(ADDR)
    assert got is not None and got["payload"] == PAYLOAD


def test_journal_survives_torn_final_line(tmp_path):
    root = tmp_path / "cas"
    ResultStore(root).put(ADDR, CANON, PAYLOAD)
    with open(root / "index.jsonl", "a") as fh:
        fh.write('{"op": "put", "addr')  # crashed writer
    reopened = ResultStore(root)
    assert reopened.get(ADDR) is not None


def test_vanished_object_file_is_a_miss(tmp_path):
    root = tmp_path / "cas"
    store = ResultStore(root)
    store.put(ADDR, CANON, PAYLOAD)
    next((root / "objects").rglob("*.json")).unlink()
    reopened = ResultStore(root)
    assert reopened.get(ADDR) is None


# --------------------------------------------------------------------- #
# Integrity: a corrupt entry degrades to a miss, never to bad bytes
# --------------------------------------------------------------------- #

def test_corrupt_payload_detected_and_dropped(tmp_path):
    root = tmp_path / "cas"
    store = ResultStore(root)
    store.put(ADDR, CANON, PAYLOAD)
    obj = next((root / "objects").rglob("*.json"))
    doc = json.loads(obj.read_text())
    doc["payload"]["rounds"] = 999  # bit-rot / tamper
    obj.write_text(json.dumps(doc, sort_keys=True))
    assert store.get(ADDR) is None
    assert store.integrity_failures == 1
    assert ADDR not in store and not obj.exists()
    # A re-put after the drop re-stores cleanly.
    store.put(ADDR, CANON, PAYLOAD)
    assert store.get(ADDR) is not None


def test_unreadable_object_is_a_miss(tmp_path):
    root = tmp_path / "cas"
    store = ResultStore(root)
    store.put(ADDR, CANON, PAYLOAD)
    next((root / "objects").rglob("*.json")).write_text("{not json")
    assert store.get(ADDR) is None
    assert store.integrity_failures == 1


# --------------------------------------------------------------------- #
# Eviction: FIFO, capacity-bounded, deterministic
# --------------------------------------------------------------------- #

def test_fifo_eviction_by_entries(tmp_path):
    store = ResultStore(tmp_path / "cas", max_entries=2)
    addrs = []
    for i in range(3):
        canon, addr = _addr(i)
        store.put(addr, canon, dict(PAYLOAD, i=i))
        addrs.append(addr)
    assert store.evictions == 1 and len(store) == 2
    assert store.get(addrs[0]) is None          # oldest gone
    assert store.get(addrs[1]) is not None
    assert store.get(addrs[2]) is not None


def test_fifo_eviction_by_bytes(tmp_path):
    store = ResultStore(tmp_path / "cas", max_bytes=1)
    c0, a0 = _addr(0)
    c1, a1 = _addr(1)
    store.put(a0, c0, PAYLOAD)
    assert len(store) == 1        # a lone oversized entry is kept
    store.put(a1, c1, PAYLOAD)
    assert len(store) == 1 and store.evictions >= 1
    assert store.get(a0) is None and store.get(a1) is not None


def test_eviction_order_survives_reopen(tmp_path):
    root = tmp_path / "cas"
    store = ResultStore(root, max_entries=10)
    addrs = []
    for i in range(3):
        canon, addr = _addr(i)
        store.put(addr, canon, PAYLOAD)
        addrs.append(addr)
    reopened = ResultStore(root, max_entries=2)
    # Journal replay reconstructs insertion order, so capacity shrink
    # evicts the same oldest entry any host would evict.
    c3, a3 = _addr(3)
    reopened.put(a3, c3, PAYLOAD)
    assert reopened.get(addrs[0]) is None
    assert reopened.get(addrs[2]) is not None


@pytest.mark.parametrize("kwargs", [{"max_entries": 0}, {"max_bytes": 0}])
def test_rejects_nonpositive_capacity(kwargs):
    with pytest.raises(ValueError):
        ResultStore(None, **kwargs)


def test_stats_shape(tmp_path):
    store = ResultStore(tmp_path / "cas")
    store.put(ADDR, CANON, PAYLOAD)
    store.get(ADDR)
    s = store.stats()
    assert s["entries"] == 1 and s["puts"] == 1 and s["gets"] >= 1
    assert s["persistent"] is True and s["bytes"] > 0
    assert ResultStore(None).stats()["persistent"] is False
