"""Failure injection: adversarial delay schedules across the protocol suite.

The paper's time model lets an adversary pick any delay in [0, w(e)] per
message.  These tests drive the protocols with hostile schedules —
last-in-first-out-ish bursts, per-direction asymmetry, alternating
extremes — and assert outputs stay correct (safety never depends on
timing).
"""

import itertools

import pytest

from repro.core import MAX, compute_global_function
from repro.graphs import (
    dijkstra,
    mst_weight,
    random_connected_graph,
    tree_distances,
)
from repro.protocols import (
    run_con_hybrid,
    run_dfs,
    run_flood,
    run_mst_centr,
    run_mst_fast,
    run_mst_ghs,
    run_spt_centr,
    run_spt_recur,
    run_spt_synch,
)
from repro.sim import PerEdgeDelay


def alternating_extremes():
    """Every other message instant, the rest maximally slow."""
    flip = itertools.count()
    return PerEdgeDelay(lambda u, v, w: 0.0 if next(flip) % 2 == 0 else w)


def one_slow_direction():
    """Messages u->v with repr(u) < repr(v) are instant; reverse is slow."""
    return PerEdgeDelay(lambda u, v, w: 0.0 if repr(u) < repr(v) else w)


def bursty(period=5):
    """Bursts: batches of `period` instant messages, then one slow one."""
    counter = itertools.count()
    return PerEdgeDelay(
        lambda u, v, w: w if next(counter) % (period + 1) == period else 0.0
    )


ADVERSARIES = [alternating_extremes, one_slow_direction, bursty]


@pytest.mark.parametrize("adversary", ADVERSARIES)
def test_flood_and_dfs_under_adversary(adversary):
    g = random_connected_graph(15, 22, seed=1)
    result, tree = run_flood(g, 0, delay=adversary())
    assert tree.is_tree()
    result, tree = run_dfs(g, 0, delay=adversary())
    assert tree.is_tree()


@pytest.mark.parametrize("adversary", ADVERSARIES)
def test_mst_suite_under_adversary(adversary):
    g = random_connected_graph(14, 20, seed=2, max_weight=9)
    v_opt = mst_weight(g)
    for runner in (run_mst_ghs, run_mst_fast):
        _, tree = runner(g, delay=adversary())
        assert tree.total_weight() == pytest.approx(v_opt)
    _, tree = run_mst_centr(g, 0, delay=adversary())
    assert tree.total_weight() == pytest.approx(v_opt)


@pytest.mark.parametrize("adversary", ADVERSARIES)
def test_spt_suite_under_adversary(adversary):
    g = random_connected_graph(12, 16, seed=3, max_weight=5)
    dist, _ = dijkstra(g, 0)
    _, t1 = run_spt_centr(g, 0, delay=adversary())
    assert tree_distances(t1, 0) == pytest.approx(dist)
    _, t2 = run_spt_recur(g, 0, delay=adversary())
    assert tree_distances(t2, 0) == pytest.approx(dist)
    res, t3 = run_spt_synch(g, 0, delay=adversary())
    assert tree_distances(t3, 0) == pytest.approx(dist)


@pytest.mark.parametrize("adversary", ADVERSARIES)
def test_global_function_under_adversary(adversary):
    g = random_connected_graph(18, 24, seed=4)
    inputs = {v: (v * 31) % 57 for v in g.vertices}
    _, value = compute_global_function(g, inputs, MAX, delay=adversary())
    assert value == max(inputs.values())


def test_hybrid_under_adversary():
    g = random_connected_graph(12, 16, seed=5, max_weight=4)
    outcome = run_con_hybrid(g, 0, delay=one_slow_direction())
    assert outcome.output.is_tree()
