"""Tests for global symmetric compact function computation (Section 2)."""

import operator
from functools import reduce

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    AND,
    COUNT,
    MAX,
    MIN,
    OR,
    SUM,
    XOR,
    SymmetricCompactFunction,
    check_run_against_global_bounds,
    compute_global_function,
    global_function_comm_lower_bound,
    global_function_time_lower_bound,
    run_distributed_slt,
    shallow_light_tree,
)
from repro.graphs import (
    diameter,
    mst_weight,
    network_params,
    random_connected_graph,
    ring_graph,
)
from repro.sim import UniformDelay


# --------------------------------------------------------------------- #
# Function family
# --------------------------------------------------------------------- #


def test_fold_reference_semantics():
    assert MAX.fold([3, 1, 4, 1, 5]) == 5
    assert MIN.fold([3, 1, 4]) == 1
    assert SUM.fold([1, 2, 3]) == 6
    assert XOR.fold([0b101, 0b011]) == 0b110
    assert AND.fold([True, True, False]) is False
    assert OR.fold([False, False, True]) is True
    with pytest.raises(ValueError):
        SUM.fold([])


def test_custom_function():
    gcd = SymmetricCompactFunction("gcd", lambda a, b: __import__("math").gcd(a, b))
    assert gcd.fold([12, 18, 24]) == 6


# --------------------------------------------------------------------- #
# Distributed computation: correctness at every node
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("func,oracle", [
    (MAX, max),
    (SUM, sum),
    (MIN, min),
    (XOR, lambda xs: reduce(operator.xor, xs)),
])
def test_all_nodes_learn_global_value(func, oracle):
    g = random_connected_graph(25, 30, seed=1)
    inputs = {v: (v * 13 + 5) % 101 for v in g.vertices}
    result, value = compute_global_function(g, inputs, func)
    assert value == oracle(list(inputs.values()))
    for v in g.vertices:
        assert result.result_of(v) == value


def test_count_via_ones():
    g = ring_graph(10)
    result, value = compute_global_function(g, {v: 1 for v in g.vertices}, COUNT)
    assert value == 10


def test_missing_inputs_rejected():
    g = ring_graph(5)
    with pytest.raises(ValueError):
        compute_global_function(g, {0: 1}, SUM)


def test_under_random_delays():
    g = random_connected_graph(20, 25, seed=2)
    inputs = {v: v for v in g.vertices}
    _, value = compute_global_function(
        g, inputs, MAX, delay=UniformDelay(), seed=99
    )
    assert value == max(inputs.values())


# --------------------------------------------------------------------- #
# Upper bound (Corollary 2.3) and lower bound (Theorem 2.1)
# --------------------------------------------------------------------- #


@settings(max_examples=15, deadline=None)
@given(st.integers(5, 30), st.integers(0, 40), st.integers(0, 1000))
def test_cost_between_lower_bound_and_slt_upper_bound(n, extra, seed):
    g = random_connected_graph(n, extra, seed=seed)
    p = network_params(g)
    inputs = {v: 1 for v in g.vertices}
    q = 2.0
    result, _ = compute_global_function(g, inputs, SUM, q=q)
    # Upper bound: convergecast + broadcast over the SLT.
    slt = shallow_light_tree(g, g.vertices[0], q)
    assert result.comm_cost <= 2 * slt.weight + 1e-6
    assert result.comm_cost <= 2 * (1 + 2 / q) * p.V + 1e-6
    assert result.finish_time <= 2 * (2 * q + 1) * p.D + 1e-6
    # Lower bound: Omega(V) communication (Theorem 2.1).
    ratios = check_run_against_global_bounds(g, result.comm_cost, result.time)
    assert ratios["comm_ratio"] >= 1.0 - 1e-9


def test_lower_bound_values():
    g = random_connected_graph(15, 15, seed=3)
    assert global_function_comm_lower_bound(g) == pytest.approx(mst_weight(g))
    assert global_function_time_lower_bound(g) == pytest.approx(diameter(g))


def test_check_run_raises_below_bound():
    g = ring_graph(6, weight=2.0)
    with pytest.raises(AssertionError):
        check_run_against_global_bounds(g, comm_cost=1.0, time=100.0)


# --------------------------------------------------------------------- #
# Distributed SLT construction (Theorem 2.7)
# --------------------------------------------------------------------- #


def test_distributed_slt_matches_sequential_and_obeys_bounds():
    g = random_connected_graph(18, 25, seed=4)
    p = network_params(g)
    out = run_distributed_slt(g, 0, q=2.0)
    seq = shallow_light_tree(g, 0, q=2.0)
    assert sorted(out.tree.edge_list()) == sorted(seq.tree.edge_list())
    # Theorem 2.7: O(V n^2) communication, O(D n^2) time (generous constant).
    assert out.comm_cost <= 8 * p.V * p.n**2
    assert out.time <= 8 * p.D * p.n**2
    # And the tree is an SLT:
    assert out.tree.total_weight() <= 2 * p.V + 1e-6


def test_global_function_on_precomputed_tree():
    g = random_connected_graph(12, 12, seed=5)
    slt = shallow_light_tree(g, 0, 2.0)
    inputs = {v: v + 1 for v in g.vertices}
    result, value = compute_global_function(g, inputs, SUM, tree=slt.tree)
    assert value == sum(inputs.values())
