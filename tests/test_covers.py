"""Tests for clusters, sparse-cover coarsening (Thm 1.1), tree edge-covers."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.covers import (
    build_tree_edge_cover,
    cluster_radius,
    coarsen_cover,
    cover_degree,
    cover_radius,
    is_cluster,
    is_cover,
    max_cover_degree,
    subsumes,
)
from repro.covers.coarsening import theoretical_radius_bound
from repro.graphs import (
    grid_graph,
    max_neighbor_distance,
    path_graph,
    random_connected_graph,
    ring_graph,
    shortest_path,
    tree_distances,
)


# --------------------------------------------------------------------- #
# Cluster / cover basics
# --------------------------------------------------------------------- #


def test_is_cluster():
    g = ring_graph(6)
    assert is_cluster(g, {0, 1, 2})
    assert not is_cluster(g, {0, 2})  # induced subgraph disconnected
    assert not is_cluster(g, set())


def test_cluster_radius_path_segment():
    g = path_graph(7, weight=2.0)
    assert cluster_radius(g, {0, 1, 2, 3, 4}) == pytest.approx(4.0)  # center 2


def test_cover_degree_and_max():
    cover = [{0, 1}, {1, 2}, {1, 3}]
    assert cover_degree(cover, 1) == 3
    assert cover_degree(cover, 0) == 1
    assert max_cover_degree(cover) == 3


def test_is_cover_and_subsumes():
    g = path_graph(4)
    assert is_cover(g, [{0, 1}, {2, 3}])
    assert not is_cover(g, [{0, 1}, {2}])
    assert subsumes([{0, 1, 2}, {2, 3}], [{0, 1}, {2, 3}])
    assert not subsumes([{0, 1}], [{0, 1, 2}])


# --------------------------------------------------------------------- #
# Coarsening (Theorem 1.1)
# --------------------------------------------------------------------- #


def _singleton_cover(g):
    return [frozenset([v]) for v in g.vertices]


def test_coarsen_rejects_bad_input():
    with pytest.raises(ValueError):
        coarsen_cover([frozenset()], 2)
    with pytest.raises(ValueError):
        coarsen_cover([frozenset([1])], 0)


def test_coarsen_empty_cover():
    assert coarsen_cover([], 3) == []


def test_coarsen_subsumption_partition_of_indices():
    g = ring_graph(10)
    initial = [frozenset(shortest_path(g, u, v)) for u, v, _ in g.edges()]
    out = coarsen_cover(initial, k=2)
    # every input index subsumed exactly once
    all_members = [i for cc in out for i in cc.kernel_members]
    assert sorted(all_members) == list(range(len(initial)))
    # and containment holds
    for cc in out:
        for i in cc.kernel_members:
            assert initial[i] <= cc.vertices


def test_coarsen_k1_merges_everything_overlapping():
    # With k=1 the radius bound is (2*1-1) = 1x ... growth threshold |S|^1
    # means growth never helps; clusters merge only via the final layer.
    initial = [frozenset([0, 1]), frozenset([1, 2]), frozenset([5])]
    out = coarsen_cover(initial, k=1)
    union = set().union(*(cc.vertices for cc in out))
    assert union == {0, 1, 2, 5}


@settings(max_examples=20, deadline=None)
@given(st.integers(6, 24), st.integers(0, 20), st.integers(0, 500),
       st.integers(1, 5))
def test_coarsen_radius_and_degree_bounds(n, extra, seed, k):
    g = random_connected_graph(n, extra, seed=seed)
    initial = [frozenset(shortest_path(g, u, v)) for u, v, _ in g.edges()]
    out = coarsen_cover(initial, k=k)
    cover = [cc.vertices for cc in out]
    assert is_cover(g, cover)
    assert subsumes(cover, initial)
    # Every output cluster is connected (a genuine cluster).
    for c in cover:
        assert is_cluster(g, c)
    # Radius bound of Theorem 1.1.
    r0 = cover_radius(g, initial)
    assert cover_radius(g, cover) <= theoretical_radius_bound(k, r0) + 1e-9
    # Degree bound: |S|^{1/k} * (ln|S| + 1) + 1 (pass-structured bound).
    m = len(initial)
    bound = m ** (1.0 / k) * (math.log(m) + 1.0) + 1.0
    assert max_cover_degree(cover) <= bound + 1e-9


def test_coarsen_log_k_gives_low_degree():
    g = grid_graph(5, 5)
    initial = [frozenset(shortest_path(g, u, v)) for u, v, _ in g.edges()]
    k = max(1, math.ceil(math.log2(len(initial))))
    out = coarsen_cover(initial, k=k)
    # At k = log m the degree is O(log m).
    assert max_cover_degree([cc.vertices for cc in out]) <= 2 * math.log2(
        len(initial)
    ) + 4


# --------------------------------------------------------------------- #
# Tree edge-cover (Definition 3.1 / Lemma 3.2)
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("maker", [
    lambda: ring_graph(12),
    lambda: grid_graph(4, 4),
    lambda: random_connected_graph(20, 20, seed=42),
])
def test_tree_edge_cover_properties(maker):
    g = maker()
    tec = build_tree_edge_cover(g)
    n = g.num_vertices
    d = max_neighbor_distance(g)
    # Property 3: every edge's endpoints share a tree.
    for key, idx in tec.home_tree.items():
        u, v = key
        t = tec.trees[idx]
        assert u in t.vertices and v in t.vertices
    assert len(tec.home_tree) == g.num_edges
    # Property 2: depth O(d log n).  Constant from the construction:
    # cluster radius <= (2k-1) d with k = ceil(log2 m).
    k = math.ceil(math.log2(max(2, g.num_edges)))
    assert tec.max_depth <= 2 * (2 * k - 1) * d + 1e-9
    # Property 1: each edge used by at most O(log n) trees.
    assert tec.max_edge_load <= 4 * math.log2(max(2, g.num_edges)) + 4
    # Each tree is a tree spanning its cluster.
    for ct in tec.trees:
        assert ct.tree.is_tree()
        assert set(ct.tree.vertices) == set(ct.vertices)
        depths = tree_distances(ct.tree, ct.root)
        assert max(depths.values(), default=0.0) == pytest.approx(ct.depth)


def test_tree_edge_cover_needs_edges():
    from repro.graphs import WeightedGraph

    with pytest.raises(ValueError):
        build_tree_edge_cover(WeightedGraph(vertices=[0, 1]))
