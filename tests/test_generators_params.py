"""Tests for graph generators and the weighted network parameters."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import (
    complete_graph,
    grid_graph,
    heavy_edge_clock_graph,
    lower_bound_graph,
    lower_bound_split_graph,
    mst_weight,
    network_params,
    path_graph,
    random_connected_graph,
    ring_graph,
    script_D,
    script_E,
    script_V,
    spoke_graph,
    star_graph,
)


def test_generators_shapes():
    assert path_graph(5).num_edges == 4
    assert ring_graph(5).num_edges == 5
    assert grid_graph(3, 4).num_edges == 3 * 3 + 4 * 2
    assert star_graph(6).num_edges == 5
    assert complete_graph(5).num_edges == 10


def test_random_connected_graph_connected_and_deterministic():
    g1 = random_connected_graph(30, 25, seed=11)
    g2 = random_connected_graph(30, 25, seed=11)
    assert g1.is_connected()
    assert sorted(g1.edge_list()) == sorted(g2.edge_list())
    assert g1.num_edges == 29 + 25


def test_random_connected_graph_caps_extra_edges():
    g = random_connected_graph(5, 1000, seed=0)
    assert g.num_edges == 10  # complete graph


# --------------------------------------------------------------------- #
# Lower-bound family G_n (Figure 7)
# --------------------------------------------------------------------- #


def test_lower_bound_graph_structure():
    n = 9
    g = lower_bound_graph(n)
    x = float(n + 1)
    # path edges
    for i in range(1, n):
        assert g.weight(i, i + 1) == x
    # bypass edges (i, n+1-i) for 1 <= i < n/2
    for i in range(1, (n + 1) // 2):
        j = n + 1 - i
        if j not in (i, i + 1):
            assert g.weight(i, j) == x**4
    # MST is the path alone: script-V = (n-1) X
    assert mst_weight(g) == pytest.approx((n - 1) * x)


def test_lower_bound_graph_small_n_rejected():
    with pytest.raises(ValueError):
        lower_bound_graph(3)
    with pytest.raises(ValueError):
        lower_bound_graph(10, heavy=5.0)  # X must exceed n


def test_lower_bound_split_graph():
    n, i = 9, 3
    g = lower_bound_split_graph(n, i)
    assert not g.has_edge(i, n + 1 - i)
    assert g.has_edge(i, ("v", i))
    assert g.has_edge(n + 1 - i, ("w", i))
    assert g.num_vertices == n + 2
    assert g.is_connected()
    with pytest.raises(ValueError):
        lower_bound_split_graph(9, 5)  # i >= n/2


# --------------------------------------------------------------------- #
# Clock-sync instance (d << W) and spoke graph
# --------------------------------------------------------------------- #


def test_heavy_edge_clock_graph_d_much_less_than_W():
    g = heavy_edge_clock_graph(16, heavy=1000.0)
    p = network_params(g)
    assert p.W == 1000.0
    assert p.d == 8.0  # around the ring
    assert p.d < p.W / 100


def test_spoke_graph_mst_vs_spt_tension():
    g = spoke_graph(10, spoke_weight=50.0, rim_weight=1.0)
    p = network_params(g)
    # MST: rim (9 edges) + one spoke = 59; SPT from hub would weigh 500.
    assert p.V == pytest.approx(59.0)
    # Farthest pair: hub <-> any tip at distance 50 (tips are mutually
    # within 9 of each other via the rim).
    assert p.D == pytest.approx(50.0)
    assert p.D == script_D(g)


# --------------------------------------------------------------------- #
# Parameter relations (paper Section 1.3 / Fact 6.3)
# --------------------------------------------------------------------- #


@settings(max_examples=25, deadline=None)
@given(st.integers(4, 30), st.integers(0, 40), st.integers(0, 1000))
def test_parameter_sanity_relations(n, extra, seed):
    g = random_connected_graph(n, extra, seed=seed)
    p = network_params(g)
    assert p.D <= p.V + 1e-9          # diameter <= MST weight
    assert p.V <= p.E + 1e-9          # MST <= total weight
    assert p.d <= p.W + 1e-9          # neighbor distance <= max weight
    assert p.V <= (p.n - 1) * p.D + 1e-9  # Fact 6.3
    assert p.E == pytest.approx(script_E(g))
    assert p.V == pytest.approx(script_V(g))


def test_network_params_disconnected_raises():
    from repro.graphs import WeightedGraph

    with pytest.raises(ValueError):
        network_params(WeightedGraph([(0, 1, 1.0), (2, 3, 1.0)]))
