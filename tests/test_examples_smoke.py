"""Smoke tests: the example scripts run end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

# The fast subset (the heavier demos are exercised by the benchmarks'
# shared experiment functions anyway).
FAST = ["quickstart.py", "slt_walkthrough.py", "message_timeline.py",
        "leader_and_termination.py", "trace_demo.py", "replay_demo.py"]


@pytest.mark.parametrize("script", FAST)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True, text=True, timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip()
