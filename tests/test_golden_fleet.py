"""Fleet golden corpus: deterministic grid, sharded record, sampled check.

The ``fleet`` marker tags the end-to-end record+replay passes — tier-1
runs them (they record a *small* corpus into tmp), and
``pytest -m "not fleet"`` skips them for a faster inner loop.
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro.replay import (
    FLEET_PROTOCOLS,
    check_fleet,
    fleet_paths,
    fleet_sample,
    fleet_specs,
    record_fleet,
)

GRID = dict(n=8, extra_edges=6, graph_seed=3, limit=50)


# --------------------------------------------------------------------- #
# Spec grid
# --------------------------------------------------------------------- #

def test_fleet_specs_deterministic():
    a = fleet_specs(20, **GRID)
    b = fleet_specs(20, **GRID)
    assert [(n, s) for n, s in a] == [(n, s) for n, s in b]
    # Names are unique and index-ordered.
    names = [n for n, _s in a]
    assert len(set(names)) == 20
    assert names == sorted(names)


def test_fleet_specs_cycle_protocols_and_adversaries():
    specs = fleet_specs(len(FLEET_PROTOCOLS) * 3, **GRID)
    assert {s.protocol for _n, s in specs} == set(FLEET_PROTOCOLS)
    drops = {s.plan.drop if s.plan else None for _n, s in specs}
    assert None in drops and len(drops) == 3


def test_fleet_specs_seed_changes_grid():
    a = fleet_specs(5, fleet_seed=0, **GRID)
    b = fleet_specs(5, fleet_seed=1, **GRID)
    assert [s.seed for _n, s in a] != [s.seed for _n, s in b]


def test_fleet_specs_rejects_empty():
    with pytest.raises(ValueError):
        fleet_specs(0)


# --------------------------------------------------------------------- #
# Record + check end-to-end (small corpus, serial — tier-1 friendly)
# --------------------------------------------------------------------- #

@pytest.mark.fleet
def test_record_check_fleet_roundtrip(tmp_path):
    corpus = tmp_path / "fleet"
    manifest = record_fleet(str(corpus), 6, **GRID)
    assert len(manifest["traces"]) == 6
    paths = fleet_paths(str(corpus))
    assert len(paths) == 6
    # Every trace lives in the shard the manifest says it does.
    for name, entry in manifest["traces"].items():
        path = corpus / entry["shard"] / f"{name}.jsonl"
        assert path.exists()
        sha = hashlib.sha256(path.read_bytes()).hexdigest()
        assert sha == entry["sha256"]
    report = check_fleet(str(corpus))
    assert report["ok"], report["failures"]
    assert report["replayed"] == report["total"] == 6


@pytest.mark.fleet
def test_check_fleet_samples_and_flags_corruption(tmp_path):
    corpus = tmp_path / "fleet"
    record_fleet(str(corpus), 5, **GRID)
    sampled = check_fleet(str(corpus), sample=2)
    assert sampled["ok"] and sampled["replayed"] == 2 and sampled["total"] == 5
    # Corrupt one trace: the manifest SHA pass must flag it even when the
    # sample would not have replayed it.
    victim = fleet_paths(str(corpus))[0]
    Path(victim).write_text(Path(victim).read_text().replace('"', "'", 1))
    report = check_fleet(str(corpus), sample=2)
    assert not report["ok"]
    assert victim in report["failures"]
    assert "sha mismatch" in report["failures"][victim]


@pytest.mark.fleet
def test_record_fleet_rerecord_is_byte_identical(tmp_path):
    a, b = tmp_path / "a", tmp_path / "b"
    record_fleet(str(a), 4, **GRID)
    record_fleet(str(b), 4, **GRID)
    shas = []
    for corpus in (a, b):
        shas.append({Path(p).name: hashlib.sha256(Path(p).read_bytes()).hexdigest()
                     for p in fleet_paths(str(corpus))})
    assert shas[0] == shas[1]
    ma = json.loads((a / "manifest.json").read_text())
    mb = json.loads((b / "manifest.json").read_text())
    assert ma == mb


# --------------------------------------------------------------------- #
# Sampling
# --------------------------------------------------------------------- #

def test_fleet_sample_deterministic_and_seeded():
    paths = [f"shard-00/fleet-{i:05d}-broadcast.jsonl" for i in range(30)]
    s1 = fleet_sample(paths, 10)
    s2 = fleet_sample(paths, 10)
    assert s1 == s2 and len(s1) == 10
    assert set(s1) <= set(paths)
    s3 = fleet_sample(paths, 10, sample_seed=7)
    assert s1 != s3  # different seed, different subset (overwhelmingly)


def test_fleet_sample_k_at_least_len_is_everything():
    paths = ["x.jsonl", "y.jsonl"]
    assert fleet_sample(paths, 5) == sorted(paths)
