"""Tests for shortest paths / MST, cross-checked against networkx oracles."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import (
    WeightedGraph,
    diameter,
    dijkstra,
    distance,
    eccentricity,
    kruskal_mst,
    max_neighbor_distance,
    minimum_spanning_tree,
    mst_weight,
    path_graph,
    prim_mst,
    radius_center,
    random_connected_graph,
    ring_graph,
    shortest_path,
    shortest_path_tree,
    tree_distances,
    tree_path,
)


def to_nx(g: WeightedGraph) -> nx.Graph:
    h = nx.Graph()
    h.add_nodes_from(g.vertices)
    for u, v, w in g.edges():
        h.add_edge(u, v, weight=w)
    return h


# --------------------------------------------------------------------- #
# Dijkstra / distances
# --------------------------------------------------------------------- #


def test_dijkstra_path_graph():
    g = path_graph(5, weight=2.0)
    dist, parent = dijkstra(g, 0)
    assert dist == {0: 0.0, 1: 2.0, 2: 4.0, 3: 6.0, 4: 8.0}
    assert parent[4] == 3 and parent[0] is None


def test_dijkstra_prefers_light_detour():
    g = WeightedGraph([(0, 1, 10.0), (0, 2, 1.0), (2, 1, 1.0)])
    dist, parent = dijkstra(g, 0)
    assert dist[1] == 2.0
    assert parent[1] == 2


def test_dijkstra_missing_source():
    with pytest.raises(KeyError):
        dijkstra(path_graph(3), 99)


def test_distance_disconnected_is_inf():
    g = WeightedGraph([(0, 1, 1.0)], vertices=[2])
    assert distance(g, 0, 2) == float("inf")


def test_shortest_path_endpoints():
    g = ring_graph(6)
    p = shortest_path(g, 0, 3)
    assert p[0] == 0 and p[-1] == 3
    assert len(p) == 4  # 3 hops either way


def test_shortest_path_unreachable_raises():
    g = WeightedGraph([(0, 1, 1.0)], vertices=[2])
    with pytest.raises(ValueError):
        shortest_path(g, 0, 2)


@settings(max_examples=30, deadline=None)
@given(st.integers(10, 40), st.integers(0, 40), st.integers(0, 1000))
def test_dijkstra_matches_networkx(n, extra, seed):
    g = random_connected_graph(n, extra, seed=seed)
    dist, _ = dijkstra(g, 0)
    nx_dist = nx.single_source_dijkstra_path_length(to_nx(g), 0)
    assert dist == pytest.approx(nx_dist)


# --------------------------------------------------------------------- #
# Trees
# --------------------------------------------------------------------- #


def test_shortest_path_tree_is_tree_with_correct_depths():
    g = random_connected_graph(25, 30, seed=7)
    spt = shortest_path_tree(g, 0)
    assert spt.is_tree()
    dist, _ = dijkstra(g, 0)
    depths = tree_distances(spt, 0)
    assert depths == pytest.approx(dist)


def test_spt_disconnected_raises():
    g = WeightedGraph([(0, 1, 1.0)], vertices=[2])
    with pytest.raises(ValueError):
        shortest_path_tree(g, 0)


def test_tree_path_simple():
    t = path_graph(5)
    assert tree_path(t, 0, 4) == [0, 1, 2, 3, 4]
    assert tree_path(t, 4, 0) == [4, 3, 2, 1, 0]
    assert tree_path(t, 2, 2) == [2]


def test_tree_path_disconnected_raises():
    t = WeightedGraph([(0, 1, 1.0)], vertices=[2])
    with pytest.raises(ValueError):
        tree_path(t, 0, 2)


# --------------------------------------------------------------------- #
# Eccentricity / diameter / d
# --------------------------------------------------------------------- #


def test_eccentricity_and_diameter_path():
    g = path_graph(5, weight=3.0)
    assert eccentricity(g, 0) == 12.0
    assert eccentricity(g, 2) == 6.0
    assert diameter(g) == 12.0


def test_radius_center_path():
    g = path_graph(5)
    rad, center = radius_center(g)
    assert rad == 2.0
    assert center == 2


def test_max_neighbor_distance_heavy_chord():
    # Ring of 8 light edges + heavy chord: neighbors 0 and 4 are distance 4
    # apart through the ring even though the chord weighs 100.
    g = ring_graph(8, 1.0)
    g.add_edge(0, 4, 100.0)
    assert max_neighbor_distance(g) == 4.0


@settings(max_examples=20, deadline=None)
@given(st.integers(5, 25), st.integers(0, 20), st.integers(0, 1000))
def test_diameter_matches_networkx(n, extra, seed):
    g = random_connected_graph(n, extra, seed=seed)
    assert diameter(g) == pytest.approx(
        nx.diameter(to_nx(g), weight="weight")
    )


# --------------------------------------------------------------------- #
# MST
# --------------------------------------------------------------------- #


def test_prim_and_kruskal_agree_on_weight():
    g = random_connected_graph(30, 60, seed=3)
    assert prim_mst(g).total_weight() == pytest.approx(
        kruskal_mst(g).total_weight()
    )


def test_mst_is_spanning_tree():
    g = random_connected_graph(20, 40, seed=5)
    t = minimum_spanning_tree(g)
    assert t.is_tree()
    assert t.num_vertices == g.num_vertices


def test_mst_disconnected_raises():
    g = WeightedGraph([(0, 1, 1.0), (2, 3, 1.0)])
    with pytest.raises(ValueError):
        prim_mst(g)
    with pytest.raises(ValueError):
        kruskal_mst(g)


@settings(max_examples=30, deadline=None)
@given(st.integers(5, 35), st.integers(0, 50), st.integers(0, 1000))
def test_mst_weight_matches_networkx(n, extra, seed):
    g = random_connected_graph(n, extra, seed=seed)
    nx_w = nx.minimum_spanning_tree(to_nx(g), weight="weight").size(weight="weight")
    assert mst_weight(g) == pytest.approx(nx_w)
