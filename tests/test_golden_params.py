"""Golden-value tests for the cached graph-parameter layer.

Pins script-V, script-D, and SLT ``(w(T), Diam(T))`` for small fixture
graphs to exact constants, and asserts the memoized
:class:`~repro.graphs.cache.GraphParamCache` path agrees with raw
(cache-free) recomputation — including after the graph mutates and the
cache must invalidate.

The whole module runs once per kernel backend (``each_backend``): every
golden constant must hold bit-for-bit under both the pure-Python CSR
kernels and the NumPy backend.
"""

import pytest

pytestmark = pytest.mark.usefixtures("each_backend")

from repro.core.slt import shallow_light_tree
from repro.graphs import (
    WeightedGraph,
    diameter,
    heavy_edge_clock_graph,
    network_params,
    param_cache,
    path_graph,
    random_connected_graph,
    script_D,
    script_V,
    spoke_graph,
)
from repro.graphs.mst import prim_mst
from repro.graphs.paths import dijkstra


def raw_diameter(g: WeightedGraph) -> float:
    """Cache-free Diam(G) straight from per-source Dijkstra runs."""
    best = 0.0
    for v in g.vertices:
        dist, _ = dijkstra(g, v)
        assert len(dist) == g.num_vertices, "fixture must be connected"
        best = max(best, max(dist.values()))
    return best


def raw_mst_weight(g: WeightedGraph) -> float:
    """Cache-free w(MST(G))."""
    return prim_mst(g).total_weight()


# (factory, script_V, script_D) — exact values, hand-checkable for the
# first two fixtures and pinned-from-trusted-raw-path for the rest.
FIXTURES = [
    ("path5w2", lambda: path_graph(5, 2.0), 8.0, 8.0),
    ("spoke", lambda: spoke_graph(30, 100.0, 1.0), 129.0, 100.0),
    ("rand10", lambda: random_connected_graph(10, 12, seed=4), 19.0, 9.0),
    ("heavy", lambda: heavy_edge_clock_graph(8, 50.0), 7.0, 4.0),
]

# (w(T), Diam(T)) of the q=2 SLT rooted at the first vertex.
SLT_GOLDEN = {
    "path5w2": (8.0, 8.0),
    "spoke": (129.0, 129.0),
    "rand10": (19.0, 9.0),
    "heavy": (7.0, 7.0),
}


@pytest.mark.parametrize(
    "name,factory,want_v,want_d",
    FIXTURES,
    ids=[f[0] for f in FIXTURES],
)
def test_script_params_pinned_and_cached_equals_raw(name, factory, want_v, want_d):
    g = factory()
    # Raw (cache-free) computation matches the pinned constants...
    assert raw_mst_weight(g) == want_v
    assert raw_diameter(g) == want_d
    # ...and the cached public path returns the identical values, twice
    # (second call served from the memo).
    for _ in range(2):
        assert script_V(g) == want_v
        assert script_D(g) == want_d
    cache = param_cache(g)
    assert cache.stats()["hits"] > 0


@pytest.mark.parametrize(
    "name,factory,want_v,want_d",
    FIXTURES,
    ids=[f[0] for f in FIXTURES],
)
def test_slt_golden_values(name, factory, want_v, want_d):
    g = factory()
    slt = shallow_light_tree(g, g.vertices[0], 2.0)
    want_wt, want_diam = SLT_GOLDEN[name]
    assert slt.tree.total_weight() == want_wt
    assert raw_diameter(slt.tree) == want_diam
    assert diameter(slt.tree) == want_diam  # cached path agrees


def test_network_params_cached_identical_to_raw():
    g = random_connected_graph(10, 12, seed=4)
    p1 = network_params(g)
    p2 = network_params(g)
    assert p1 is p2  # second call is the memoized object
    assert (p1.V, p1.D) == (raw_mst_weight(g), raw_diameter(g))
    assert p1.E == g.total_weight()


def test_mutation_invalidates_and_matches_raw():
    g = path_graph(5, 2.0)
    assert script_V(g) == 8.0 and script_D(g) == 8.0
    cache = param_cache(g)

    # Shortcut edge: diameter shrinks, MST unchanged in weight structure.
    g.add_edge(0, 4, 1.0)
    assert cache.graph.version == g.version
    assert script_D(g) == raw_diameter(g) == 4.0
    assert script_V(g) == raw_mst_weight(g) == 7.0
    assert cache.stats()["invalidations"] == 1

    # Removing it restores the originals.
    g.remove_edge(0, 4)
    assert script_D(g) == raw_diameter(g) == 8.0
    assert script_V(g) == raw_mst_weight(g) == 8.0

    # Overwriting a weight (no topology change) must also invalidate.
    g.add_edge(0, 1, 0.5)
    assert script_D(g) == raw_diameter(g) == 6.5
    assert script_V(g) == raw_mst_weight(g) == 6.5


def test_version_counter_semantics():
    g = WeightedGraph()
    v0 = g.version
    g.add_vertex("a")
    assert g.version == v0 + 1
    g.add_vertex("a")  # re-adding an existing vertex is a no-op
    assert g.version == v0 + 1
    g.add_edge("a", "b", 1.0)
    assert g.version == v0 + 2
    g.add_edge("a", "b", 2.0)  # weight overwrite still bumps
    assert g.version == v0 + 3
    g.remove_edge("a", "b")
    assert g.version == v0 + 4


def test_copy_does_not_share_cache():
    g = random_connected_graph(8, 6, seed=1)
    d = script_D(g)
    h = g.copy()
    # The copy computes from its own (fresh) cache and agrees...
    assert script_D(h) == d
    # ...and mutating the copy never disturbs the original's answers.
    h.add_edge(h.vertices[0], h.vertices[-1], 0.001)
    assert script_D(g) == d
    assert script_D(h) == raw_diameter(h)
