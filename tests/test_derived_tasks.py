"""Tests for Section 1.4.1's derived tasks and the multi-initiator controller."""

import pytest

from repro.control import run_controlled_multi
from repro.core import broadcast_value, detect_termination
from repro.core.lower_bounds import global_function_comm_lower_bound
from repro.graphs import network_params, random_connected_graph, ring_graph
from repro.protocols.broadcast import FloodProcess
from repro.sim import Process, UniformDelay


# --------------------------------------------------------------------- #
# Broadcast as a symmetric compact function
# --------------------------------------------------------------------- #


def test_broadcast_value_reaches_everyone():
    g = random_connected_graph(25, 30, seed=1)
    result, value = broadcast_value(g, origin=7, value="the news")
    assert value == "the news"
    for v in g.vertices:
        assert result.result_of(v) == "the news"


def test_broadcast_value_cost_theta_V():
    g = random_connected_graph(30, 45, seed=2)
    p = network_params(g)
    result, _ = broadcast_value(g, origin=3, value=42)
    lb = global_function_comm_lower_bound(g)
    assert lb <= result.comm_cost <= 4 * p.V + 1e-9


def test_broadcast_value_under_random_delays():
    g = ring_graph(12, weight=3.0)
    result, value = broadcast_value(g, origin=5, value=("x", 1),
                                    delay=UniformDelay(), seed=4)
    assert value == ("x", 1)


# --------------------------------------------------------------------- #
# Termination detection as AND
# --------------------------------------------------------------------- #


def test_detect_termination_all_done():
    g = random_connected_graph(20, 25, seed=3)
    result, done = detect_termination(g, {v: True for v in g.vertices})
    assert done is True
    for v in g.vertices:
        assert result.result_of(v) is True


def test_detect_termination_one_straggler():
    g = random_connected_graph(20, 25, seed=3)
    flags = {v: True for v in g.vertices}
    flags[11] = False
    _, done = detect_termination(g, flags)
    assert done is False


# --------------------------------------------------------------------- #
# Multi-initiator controller
# --------------------------------------------------------------------- #


def test_multi_initiator_correct_run_completes():
    g = random_connected_graph(20, 25, seed=5)
    p = network_params(g)

    def factory(v):
        return FloodProcess(v in (0, 9), payload="dual")

    outcome = run_controlled_multi(
        g, factory, [0, 9], threshold_per_root=2 * p.E
    )
    assert not outcome.halted
    for v in g.vertices:
        payload, _parent = outcome.inner_result_of(v)
        assert payload == "dual"


def test_multi_initiator_runaway_capped():
    class Storm(Process):
        def on_start(self):
            if getattr(self, "boom", False):
                for v in self.neighbors():
                    self.send(v, 0)

        def on_message(self, frm, k):
            for v in self.neighbors():
                self.send(v, k + 1)

    g = ring_graph(10, weight=2.0)
    roots = [0, 5]
    threshold = 150.0

    def factory(v):
        p = Storm()
        p.boom = v in roots
        return p

    outcome = run_controlled_multi(
        g, factory, roots, threshold, max_events=2_000_000
    )
    assert outcome.halted
    # Cap: 2 x (number of roots) x per-root threshold.
    assert outcome.consumed <= 2 * len(roots) * threshold + 1e-9


def test_multi_initiator_requires_initiators():
    g = ring_graph(5)
    with pytest.raises(ValueError):
        run_controlled_multi(g, lambda v: FloodProcess(False), [], 10.0)
