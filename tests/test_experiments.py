"""Tests for the experiments package (registry, rendering, CLI plumbing)."""

import subprocess
import sys

import pytest

from repro.experiments import (
    Table,
    all_experiments,
    render_markdown,
    render_text,
)


def test_registry_has_every_paper_artifact():
    registry = all_experiments()
    expected = {"fig1", "fig2", "fig3", "fig4", "fig5", "fig7",
                "clock", "synch", "controller"}
    assert expected <= set(registry)
    for key, (desc, runner) in registry.items():
        assert isinstance(desc, str) and desc
        assert callable(runner)


def test_table_column_access():
    t = Table("t", ["a", "b"], [[1, 2], [3, 4]])
    assert t.column("a") == [1, 3]
    assert t.column("b") == [2, 4]
    with pytest.raises(ValueError):
        t.column("nope")


def test_render_text_and_markdown():
    t = Table("demo", ["x", "ratio"], [[1, 0.333333], [1000, 12345.6]],
              notes="a note")
    txt = render_text(t)
    assert "demo" in txt and "0.33" in txt and "1.23e+04" in txt
    assert "a note" in txt
    md = render_markdown(t)
    assert md.startswith("### demo")
    assert "| x | ratio |" in md
    assert "*a note*" in md


def test_fig1_experiment_returns_consistent_table():
    desc, runner = all_experiments()["fig1"]
    (table,) = runner()
    assert table.header[0] == "n"
    assert len(table.rows) >= 3
    # comm/V >= 1 for every row (the lower bound).
    for ratio in table.column("comm/V"):
        assert ratio >= 1.0 - 1e-9


def test_cli_list():
    out = subprocess.run(
        [sys.executable, "-m", "repro.experiments", "--list"],
        capture_output=True, text=True, check=True,
    )
    assert "fig1" in out.stdout
    assert "controller" in out.stdout


def test_cli_unknown_key():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.experiments", "not-an-experiment"],
        capture_output=True, text=True,
    )
    assert proc.returncode == 2
    assert "unknown experiment" in proc.stderr


def test_cli_runs_one_experiment_markdown():
    out = subprocess.run(
        [sys.executable, "-m", "repro.experiments", "fig1", "--markdown"],
        capture_output=True, text=True, check=True, timeout=300,
    )
    assert "### Figure 1" in out.stdout
    assert "| n | m |" in out.stdout
