"""Tests for ``repro.obs``: recorder, spans, exporters, profiler, wiring."""

import json
import pickle

import pytest

from repro.experiments.parallel import chaos_rows, shutdown_pool
from repro.faults import (
    ACK_TAG,
    RETRY_TAG,
    CrashWindow,
    FaultPlan,
    run_chaos,
)
from repro.graphs import (
    diameter,
    path_graph,
    random_connected_graph,
    ring_graph,
)
from repro.obs import (
    EVENT_KINDS,
    NullRecorder,
    Profiler,
    TraceRecorder,
    TraceSummary,
    current_session,
    default_recorder,
    render_timeline,
    to_chrome_trace,
    to_jsonl,
    tracing,
    validate_jsonl,
)
from repro.protocols.broadcast import FloodProcess
from repro.protocols.spt_synch import SyncBellmanFord
from repro.sim import Network
from repro.sim.events import EventQueue
from repro.synch import run_alpha_w, run_beta_w, run_gamma_w


def flood_run(graph, recorder=None, **kw):
    root = graph.vertices[0]
    net = Network(graph, lambda v: FloodProcess(v == root, "x"),
                  recorder=recorder, **kw)
    return net, net.run()


# --------------------------------------------------------------------- #
# Recorder basics
# --------------------------------------------------------------------- #


def test_recorder_captures_the_run():
    rec = TraceRecorder()
    net, result = flood_run(path_graph(5, weight=2.0), recorder=rec)
    assert net.recorder is rec and net._rec is rec

    events = rec.events
    assert events, "no events recorded"
    assert [e.seq for e in events] == list(range(len(events)))
    assert all(e.kind in EVENT_KINDS for e in events)
    kinds = {e.kind for e in events}
    assert {"send", "deliver", "finish"} <= kinds
    # Aggregates agree with the retained log (nothing was evicted).
    assert rec.n_emitted == rec.n_recorded == len(events)
    assert not rec.truncated
    assert rec.counts["send"] == result.message_count
    assert rec.total_cost == result.comm_cost
    # attach() + finalize() stamped the run metadata.
    assert rec.meta["n"] == 5 and rec.meta["m"] == 4
    assert rec.meta["status"] == "quiescent"
    assert rec.meta["end_time"] == result.time
    assert rec.meta["events_fired"] > 0


def test_deliver_refs_name_their_send():
    rec = TraceRecorder()
    flood_run(path_graph(4), recorder=rec)
    by_seq = {e.seq: e for e in rec.events}
    delivers = [e for e in rec.events if e.kind == "deliver"]
    assert delivers
    for d in delivers:
        send = by_seq[d.ref]
        assert send.kind == "send"
        assert (send.node, send.peer) == (d.peer, d.node)
        assert send.t <= d.t


def test_null_recorder_is_normalized_away():
    rec = NullRecorder()
    net, result = flood_run(path_graph(4), recorder=rec)
    assert net.recorder is rec
    assert net._rec is None  # the hot path never sees it
    assert result.status == "quiescent"
    assert rec.events == [] and rec.total_cost == 0.0
    with rec.span("anything"):
        assert rec.span_of(0) == ""
    assert rec.record_send(0.0, 0, 1, "x", 1.0) == -1


def test_trace_callback_and_recorder_compose():
    seen = []
    rec = TraceRecorder()
    _, result = flood_run(
        ring_graph(6, weight=1.0), recorder=rec,
        trace=lambda t, frm, to, tag, cost: seen.append((t, frm, to)),
    )
    # Regression: both observers fire for every accepted transmission.
    assert len(seen) == result.message_count == rec.counts["send"]
    sends = [(e.t, e.node, e.peer) for e in rec.events if e.kind == "send"]
    assert seen == sends


# --------------------------------------------------------------------- #
# Spans
# --------------------------------------------------------------------- #


def test_span_paths_nest_and_close():
    rec = TraceRecorder()
    with rec.span("outer"):
        assert rec.span_of("a") == "outer"  # global span catches everyone
        path = rec.open_span("inner", node="a")
        assert path == "outer/inner"
        assert rec.span_of("a") == "outer/inner"
        assert rec.span_of("b") == "outer"
        rec.close_span(node="a")
    assert rec.span_of("a") == ""
    assert rec.counts["span_open"] == rec.counts["span_close"] == 2
    with pytest.raises(RuntimeError):
        rec.close_span(node="a")


def test_span_costs_sum_exactly_to_comm_cost_under_faults():
    g = random_connected_graph(12, 18, seed=3)
    rec = TraceRecorder()
    out = run_chaos(g, lambda v: FloodProcess(v == g.vertices[0], "x"),
                    plan=FaultPlan.message_loss(0.15, seed=5),
                    reliable=True, watchdog_time=1e6, recorder=rec)
    assert out.status == "ok"
    cost = out.result.metrics.cost_by_tag
    # Exact, not approximate: same additions in the same order as Metrics.
    assert sum(rec.cost_by_span.values()) == out.result.comm_cost
    assert rec.cost_by_span["rel-ack"] == cost[ACK_TAG]
    assert rec.cost_by_span.get("rel-retry", 0.0) == cost.get(RETRY_TAG, 0.0)
    assert rec.cost_by_span.get("rel-retry", 0.0) > 0  # loss forced retries
    assert sum(rec.count_by_span.values()) == out.result.message_count


def _gamma_setup(n=10, extra=14, seed=4):
    g = random_connected_graph(n, extra, seed=seed)
    stop = int(diameter(g)) + 1
    w_max = int(max(w for _, _, w in g.edges()))
    factory = lambda v: SyncBellmanFord(v == g.vertices[0], stop)
    return g, factory, 4 * (stop + 1) + 4 * w_max + 8


def test_gamma_w_span_breakdown_is_exact():
    g, factory, max_pulse = _gamma_setup()
    rec = TraceRecorder()
    res = run_gamma_w(g, factory, max_pulse=max_pulse, recorder=rec)
    assert sum(rec.cost_by_span.values()) == res.comm_cost
    # The span tree refines the flat tag split exactly: payload sends
    # happen inside the pulse window, control traffic nests deeper.
    assert rec.cost_by_span["pulse"] == res.proto_cost
    assert rec.cost_by_span["pulse/sync-ack"] == res.ack_cost
    assert rec.cost_by_span["pulse/sync-gamma"] == res.gamma_cost
    assert rec.counts["pulse"] > 0
    assert rec.time_by_span["pulse"] > 0


@pytest.mark.parametrize("runner", [run_alpha_w, run_beta_w])
def test_simple_synchronizers_mark_pulse_spans(runner):
    g, factory, max_pulse = _gamma_setup(n=8, extra=10, seed=6)
    with tracing() as session:
        runner(g, factory, max_pulse=max_pulse)
    assert len(session.recorders) == 1
    rec = session.recorders[0][1]
    assert rec.counts["pulse"] > 0
    assert sum(rec.cost_by_span.values()) == rec.total_cost
    control = [s for s in rec.cost_by_span if s.startswith("pulse/")]
    assert control, rec.cost_by_span


# --------------------------------------------------------------------- #
# Ring buffer
# --------------------------------------------------------------------- #


def test_ring_buffer_truncates_log_but_not_aggregates():
    g = random_connected_graph(10, 15, seed=2)
    full, ringed = TraceRecorder(), TraceRecorder(limit=16)
    flood_run(g, recorder=full)
    flood_run(g, recorder=ringed)
    assert ringed.truncated and ringed.dropped > 0
    assert ringed.n_recorded == 16
    assert ringed.n_emitted == full.n_emitted > 16
    # The retained window is the most recent records, seq still monotonic.
    tail = ringed.events
    assert [e.seq for e in tail] == \
        list(range(full.n_emitted - 16, full.n_emitted))
    # Eviction never touches the incremental aggregates.
    assert ringed.cost_by_span == full.cost_by_span
    assert ringed.counts == full.counts
    assert ringed.total_cost == full.total_cost


def test_limit_zero_keeps_only_aggregates():
    rec = TraceRecorder(limit=0)
    _, result = flood_run(path_graph(6), recorder=rec)
    assert rec.n_recorded == 0 and rec.events == []
    assert rec.truncated
    assert rec.total_cost == result.comm_cost
    assert rec.counts["send"] == result.message_count


def test_negative_limit_rejected():
    with pytest.raises(ValueError):
        TraceRecorder(limit=-1)


# --------------------------------------------------------------------- #
# Exporters
# --------------------------------------------------------------------- #


def test_jsonl_is_byte_identical_across_identical_runs():
    def dump():
        rec = TraceRecorder()
        flood_run(random_connected_graph(9, 14, seed=8), recorder=rec,
                  seed=1)
        return to_jsonl(rec)

    a, b = dump(), dump()
    assert a == b
    assert validate_jsonl(a) == []


def test_validate_jsonl_flags_broken_dumps():
    rec = TraceRecorder()
    flood_run(path_graph(4), recorder=rec)
    lines = to_jsonl(rec).splitlines()

    assert validate_jsonl("not json\n")
    assert validate_jsonl("\n".join(lines[1:]))  # missing meta header
    bad_kind = dict(json.loads(lines[1]), kind="teleport")
    assert validate_jsonl("\n".join([lines[0], json.dumps(bad_kind)]))
    send = next(json.loads(ln) for ln in lines[1:]
                if json.loads(ln)["kind"] == "send")
    del send["cost"]
    assert validate_jsonl("\n".join([lines[0], json.dumps(send)]))
    # seq must be strictly increasing.
    assert validate_jsonl("\n".join([lines[0], lines[2], lines[1]]))


def test_chrome_trace_schema_and_exact_totals():
    g, factory, max_pulse = _gamma_setup()
    rec = TraceRecorder()
    res = run_gamma_w(g, factory, max_pulse=max_pulse, recorder=rec)
    doc = json.loads(json.dumps(to_chrome_trace(rec, name="t")))
    evs = doc["traceEvents"]
    assert evs
    for ev in evs:
        assert ev["ph"] in ("M", "X", "i", "C")
        if ev["ph"] != "M":
            assert ev["ts"] >= 0
        if ev["ph"] == "X":
            assert ev["dur"] >= 0
    assert {"M", "X", "i", "C"} <= {ev["ph"] for ev in evs}
    other = doc["otherData"]
    assert other["comm_cost"] == res.comm_cost
    assert sum(other["cost_by_span"].values()) == res.comm_cost
    # Channel slices: every send renders exactly once — as a delivered
    # slice, or as an "in flight" slice if the stop condition fired with
    # the message still on the wire.
    slices = [ev for ev in evs if ev.get("cat") == "message"]
    in_flight = [ev for ev in slices if "in flight" in ev["name"]]
    assert len(slices) == rec.counts["send"]
    assert len(slices) - len(in_flight) == rec.counts["deliver"]


def test_render_timeline_draws_the_flood():
    rec = TraceRecorder()
    _, result = flood_run(path_graph(5, weight=2.0), recorder=rec)
    text = render_timeline(rec, time_step=2.0)
    assert ">" in text and "*" in text
    assert f"{result.comm_cost:g}" in text
    assert "TRUNCATED" not in text


# --------------------------------------------------------------------- #
# Fault events
# --------------------------------------------------------------------- #


def test_crash_recover_drop_and_timer_events_are_recorded():
    g = path_graph(3)
    rec = TraceRecorder()
    plan = FaultPlan(crashes=[CrashWindow(1, 0.0, 100.0)])
    out = run_chaos(g, lambda v: FloodProcess(v == 0, "x"), plan=plan,
                    reliable=True, watchdog_time=1e6, recorder=rec)
    assert out.status == "ok"
    assert rec.counts["crash"] == 1 and rec.counts["recover"] == 1
    assert rec.counts["drop"] >= 1  # deliveries into the crash window
    assert rec.counts["timer"] >= 1  # retransmit timers
    fates = {e.detail for e in rec.events if e.kind == "drop"}
    assert "lost_in_crash" in fates


# --------------------------------------------------------------------- #
# Profiler + sessions
# --------------------------------------------------------------------- #


def test_trace_summary_pickles_and_round_trips():
    rec = TraceRecorder(limit=0)
    flood_run(path_graph(5), recorder=rec)
    s = rec.summary()
    assert isinstance(s, TraceSummary)
    assert s.comm_cost == rec.total_cost
    assert pickle.loads(pickle.dumps(s)) == s
    assert TraceSummary.from_dict(json.loads(json.dumps(s.as_dict()))) == s


def test_run_chaos_returns_trace_on_every_path():
    g = path_graph(4)
    rec = TraceRecorder()
    out = run_chaos(g, lambda v: FloodProcess(v == 0, "x"),
                    reliable=False, recorder=rec)
    assert out.status == "ok"
    assert out.trace is not None
    assert out.trace.comm_cost == out.result.comm_cost
    assert out.trace.meta["chaos_status"] == "ok"
    # An un-traced run carries no summary.
    out2 = run_chaos(g, lambda v: FloodProcess(v == 0, "x"), reliable=False)
    assert out2.trace is None


def test_run_chaos_trace_survives_stall():
    g = path_graph(4)
    rec = TraceRecorder()
    out = run_chaos(g, lambda v: FloodProcess(v == 0, "x"),
                    plan=FaultPlan.message_loss(1.0, seed=1),
                    reliable=False, recorder=rec)
    assert out.status == "stalled"
    assert out.trace is not None
    assert out.trace.meta["chaos_status"] == "stalled"


def test_tracing_session_is_ambient_and_restored():
    assert current_session() is None and default_recorder() is None
    with tracing(limit=0) as session:
        assert current_session() is session
        flood_run(path_graph(4))
        flood_run(ring_graph(5))
    assert current_session() is None and default_recorder() is None
    assert len(session.recorders) == 2
    labels = [label for label, _ in session.recorders]
    assert len(set(labels)) == 2
    agg = session.profiler().aggregate()
    assert agg["runs"] == 2
    assert agg["comm_cost"] == sum(
        rec.total_cost for _, rec in session.recorders)


def test_explicit_recorder_wins_over_ambient_session():
    mine = TraceRecorder()
    with tracing() as session:
        net, _ = flood_run(path_graph(3), recorder=mine)
    assert net.recorder is mine
    assert session.recorders == []


def test_profiler_report_lists_spans():
    g, factory, max_pulse = _gamma_setup()
    prof = Profiler()
    recs = []
    for i in range(2):
        rec = TraceRecorder(limit=0)
        run_gamma_w(g, factory, max_pulse=max_pulse, recorder=rec)
        prof.add_recorder(f"run-{i}", rec)
        recs.append(rec)
    text = prof.report()
    assert "2 run(s)" in text
    assert "pulse/sync-gamma" in text
    agg = prof.aggregate()
    # Identical runs: the aggregate is exactly twice one run's costs.
    assert agg["cost_by_span"]["pulse"] == 2 * recs[0].cost_by_span["pulse"]
    assert agg["comm_cost"] == 2 * recs[0].total_cost


# --------------------------------------------------------------------- #
# Sweep integration
# --------------------------------------------------------------------- #

SWEEP = dict(n=10, extra_edges=12, graph_seed=4, drop_rates=(0.0, 0.2))


def test_traced_sweep_rows_identical_serial_vs_pool():
    try:
        serial = chaos_rows(jobs=1, trace=True, **SWEEP)
        pooled = chaos_rows(jobs=2, force="pool", trace=True, **SWEEP)
    finally:
        shutdown_pool()
    assert serial == pooled
    assert all("trace" in row for row in serial)
    for row in serial:
        trace = row["trace"]
        assert trace["recorded"] == 0  # aggregates-only in workers
        assert sum(trace["cost_by_span"].values()) == trace["comm_cost"]
    prof = Profiler()
    assert prof.from_rows(serial) == len(serial)
    assert prof.aggregate()["runs"] == len(serial)


def test_untraced_sweep_rows_carry_no_trace_key():
    rows = chaos_rows(jobs=1, **SWEEP)
    assert all("trace" not in row for row in rows)


# --------------------------------------------------------------------- #
# CLI plumbing + misc
# --------------------------------------------------------------------- #


def test_pop_trace_out_parses_both_forms():
    from repro.experiments.__main__ import _pop_trace_out

    args = ["chaos", "--trace-out", "d1", "--markdown"]
    assert _pop_trace_out(args) == "d1"
    assert args == ["chaos", "--markdown"]
    args = ["--trace-out=d2"]
    assert _pop_trace_out(args) == "d2"
    assert args == []
    assert _pop_trace_out(["chaos"]) is None
    with pytest.raises(SystemExit):
        _pop_trace_out(["--trace-out"])


def test_event_queue_counts_fired_events():
    q = EventQueue()
    fired = []
    for i in range(5):
        q.schedule_call(float(i + 1), fired.append, i)
    _, events = q.run()
    assert events == 5
    assert q.fired == 5
    q.schedule_call(1.0, fired.append, 99)
    q.run()
    assert q.fired == 6  # cumulative across run() calls


def test_metrics_as_dict_is_plain_json():
    _, result = flood_run(random_connected_graph(8, 12, seed=9))
    d = result.metrics.as_dict()
    assert d["comm_cost"] == result.comm_cost
    assert d["message_count"] == result.message_count
    assert d["cost_by_tag"] == result.metrics.cost_by_tag
    assert json.loads(json.dumps(d)) == d
    assert list(d["cost_by_tag"]) == sorted(d["cost_by_tag"])
