"""Request canonicalization: content addresses are knob-complete and stable.

Two properties carry the whole cache-correctness argument:

1. *Erasure* — representations that mean the same run (key order,
   omitted-vs-explicit defaults, dict-vs-flat generator specs) hash to
   the same address, so equivalent requests dedupe.
2. *Sensitivity* — changing ANY result-affecting knob changes the
   address, so the cache can never serve a stale result for a different
   run.

Pinned hash literals at the bottom freeze the addressing scheme itself:
they fail loudly if canonicalization, defaults, or SCHEMA_VERSION change
without a deliberate bump.
"""

import pytest

from repro.graphs.npkernels import kernel_backend
from repro.serve import (
    SCHEMA_VERSION,
    RequestError,
    canonical_request,
    request_address,
)

CHAOS = {"kind": "chaos", "protocol": "broadcast", "n": 8, "extra_edges": 6,
         "graph_seed": 3, "backend": "python"}


def addr(request):
    return request_address(request)[1]


# --------------------------------------------------------------------- #
# Erasure: equivalent requests hash identically
# --------------------------------------------------------------------- #

def test_key_order_is_erased():
    shuffled = dict(reversed(list(CHAOS.items())))
    assert addr(CHAOS) == addr(shuffled)


def test_omitted_defaults_hash_like_explicit_defaults():
    explicit = dict(CHAOS, drop=0.0, reliable=True, fault_seed=7,
                    trace=False, race_detect=False)
    assert addr(CHAOS) == addr(explicit)


def test_dict_and_flat_generator_specs_hash_identically():
    flat = {"kind": "snapshot", "spec": ["random_connected", 200, 400],
            "backend": "python"}
    named = {"kind": "snapshot", "backend": "python",
             "spec": {"family": "random_connected", "n": 200,
                      "extra_edges": 400}}
    named_full = {"kind": "snapshot", "backend": "python",
                  "spec": {"family": "random_connected", "n": 200,
                           "extra_edges": 400, "seed": 0,
                           "max_weight": 10.0}}
    assert addr(flat) == addr(named) == addr(named_full)


def test_int_valued_floats_normalize():
    # JSON round-trips may widen ints to floats; the address must not care.
    assert addr(dict(CHAOS, n=8.0)) == addr(CHAOS)


def test_none_backend_resolves_ambient():
    ambient = canonical_request({"kind": "chaos", "protocol": "broadcast"})
    assert ambient["backend"] == kernel_backend()


# --------------------------------------------------------------------- #
# Sensitivity: every knob is address-bearing
# --------------------------------------------------------------------- #

@pytest.mark.parametrize("tweak", [
    {"protocol": "dfs"},
    {"n": 9},
    {"extra_edges": 7},
    {"graph_seed": 4},
    {"drop": 0.1},
    {"reliable": False},
    {"fault_seed": 8},
    {"trace": True},
    {"race_detect": True},
    {"backend": "numpy"},
])
def test_any_chaos_knob_changes_address(tweak):
    assert addr(dict(CHAOS, **tweak)) != addr(CHAOS)


def test_kinds_never_collide():
    sweep = {"kind": "sweep", "backend": "python"}
    trace = {"kind": "trace", "protocol": "broadcast", "backend": "python"}
    assert len({addr(CHAOS), addr(sweep), addr(trace)}) == 3


def test_trace_plan_and_limit_change_address():
    base = {"kind": "trace", "protocol": "dfs", "backend": "python"}
    with_plan = dict(base, plan={"drop": 0.2, "seed": 9})
    with_limit = dict(base, limit=50)
    assert len({addr(base), addr(with_plan), addr(with_limit)}) == 3


def test_sweep_drop_rates_change_address():
    base = {"kind": "sweep", "backend": "python"}
    assert addr(dict(base, drop_rates=[0.0, 0.5])) != addr(base)


def test_snapshot_spec_params_change_address():
    base = {"kind": "snapshot", "spec": ["random_connected", 200, 400],
            "backend": "python"}
    other = {"kind": "snapshot", "spec": ["random_connected", 200, 401],
             "backend": "python"}
    assert addr(base) != addr(other)


# --------------------------------------------------------------------- #
# Validation: malformed requests fail fast, before any execution
# --------------------------------------------------------------------- #

@pytest.mark.parametrize("bad", [
    {"kind": "nope"},
    {"protocol": "broadcast"},                          # missing kind
    {"kind": "chaos"},                                  # missing protocol
    {"kind": "chaos", "protocol": "broadcast", "bogus": 1},
    {"kind": "chaos", "protocol": "broadcast", "drop": 1.5},
    {"kind": "chaos", "protocol": "broadcast", "n": -2},
    {"kind": "chaos", "protocol": "broadcast", "backend": "cuda"},
    {"kind": "snapshot", "spec": ["no_such_family", 10]},
    {"kind": "snapshot", "spec": ["random_connected"]},  # missing params
    {"kind": "trace", "protocol": "dfs", "plan": {"drop": "high"}},
    "not a dict",
])
def test_malformed_requests_raise_request_error(bad):
    with pytest.raises(RequestError):
        canonical_request(bad)


# --------------------------------------------------------------------- #
# Pinned literals: the addressing scheme itself is a regression surface
# --------------------------------------------------------------------- #

def test_schema_version_pinned():
    assert SCHEMA_VERSION == 1


PINNED = {
    "chaos": (CHAOS,
              "6face4010f782a8eb3120f542072df662a7a8f7074ecec7de136b32ebc84ebdd"),
    "snapshot": ({"kind": "snapshot", "spec": ["random_connected", 200, 400],
                  "backend": "python"},
                 "bf190795de97713c5d906e42882d1d75dba3924f891114977a8dee401046290f"),
    "sweep": ({"kind": "sweep", "backend": "python"},
              "68963565b7f006f0fcafafedd9471e9fe34cf726333897a583219db4cef6e174"),
    "trace": ({"kind": "trace", "protocol": "dfs", "backend": "python"},
              "a009a66bafa12d60bb0c0a0a4b80d6bdc683d4286a9afcedd07dd411a630b5f6"),
}


@pytest.mark.parametrize("name", sorted(PINNED))
def test_pinned_addresses(name):
    request, expected = PINNED[name]
    assert addr(request) == expected
