"""TCP wire protocol end-to-end: stream, reassemble, verify, shut down.

Runs a real ``ServeServer`` on an ephemeral port inside a background
event loop and talks to it with the blocking :class:`TCPServeClient` —
the exact shape ``python -m repro.serve`` deploys, minus the process
boundary (``scripts/serve_smoke.py`` covers that in CI).
"""

import asyncio
import json
import socket
import threading

import pytest

from repro.serve import ServeError, ServeServer, ServeService, TCPServeClient
from repro.serve.address import payload_bytes

CHAOS = {"kind": "chaos", "protocol": "broadcast", "n": 8, "extra_edges": 6,
         "graph_seed": 3, "backend": "python"}
TRACE = {"kind": "trace", "protocol": "dfs", "n": 8, "extra_edges": 6,
         "graph_seed": 3, "backend": "python"}
SWEEP = {"kind": "sweep", "n": 8, "extra_edges": 6, "graph_seed": 3,
         "drop_rates": [0.0, 0.2], "backend": "python"}


class _Harness:
    """ServeServer on a private loop thread, bound to an ephemeral port."""

    def __init__(self, tmp_path):
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(target=self.loop.run_forever,
                                       daemon=True)
        self.thread.start()
        self.service = self._call(self._make_service(str(tmp_path / "cache")))
        self.server = ServeServer(self.service, port=0)
        self.host, self.port = self._call(self.server.start())

    @staticmethod
    async def _make_service(cache_dir):
        return ServeService(cache_dir=cache_dir)

    def _call(self, coro):
        return asyncio.run_coroutine_threadsafe(coro, self.loop).result(
            timeout=120)

    def close(self):
        if self.thread.is_alive():
            self._call(self.server.close())
            self.loop.call_soon_threadsafe(self.loop.stop)
            self.thread.join(timeout=30)
            self.loop.close()


@pytest.fixture
def harness(tmp_path):
    h = _Harness(tmp_path)
    yield h
    h.close()


def test_tcp_roundtrip_cold_then_cached_byte_identical(harness):
    with TCPServeClient(harness.host, harness.port) as client:
        cold = client.request(CHAOS)
        cached = client.request(CHAOS)
    assert cold["source"] == "executed" and cached["source"] == "cache"
    assert payload_bytes(cold["payload"]) == payload_bytes(cached["payload"])
    assert cold["payload_sha"] == cached["payload_sha"]
    assert cold["rows"] == 1 and cold["chunks"] == 0


def test_tcp_sweep_streams_rows(harness):
    with TCPServeClient(harness.host, harness.port) as client:
        resp = client.request(SWEEP)
    assert resp["kind"] == "sweep"
    assert resp["rows"] == len(resp["payload"]) > 0


def test_tcp_trace_streams_chunks_and_reassembles(harness):
    with TCPServeClient(harness.host, harness.port) as client:
        resp = client.request(TRACE)
    assert resp["kind"] == "trace"
    assert resp["chunks"] >= 1
    assert isinstance(resp["payload"], str)
    # The reassembled text is a well-formed JSONL trace document.
    first = json.loads(resp["payload"].splitlines()[0])
    assert isinstance(first, dict)


def test_tcp_bad_requests_get_error_lines_not_disconnects(harness):
    with TCPServeClient(harness.host, harness.port) as client:
        with pytest.raises(ServeError, match="kind"):
            client.request({"kind": "nope"})
        # The connection survives an error line: next request still works.
        assert client.request(CHAOS)["kind"] == "chaos"


def test_tcp_malformed_json_line(harness):
    with socket.create_connection((harness.host, harness.port),
                                  timeout=30) as sock:
        f = sock.makefile("rwb")
        f.write(b"this is not json\n")
        f.flush()
        doc = json.loads(f.readline())
        assert doc["type"] == "error" and "bad JSON" in doc["error"]
        f.write(b'"not an object"\n')
        f.flush()
        doc = json.loads(f.readline())
        assert doc["type"] == "error" and "object" in doc["error"]


def test_tcp_ops_stats_and_ping(harness):
    with TCPServeClient(harness.host, harness.port) as client:
        client.request(CHAOS)
        client.request(CHAOS)
        stats = client.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["store"]["entries"] == 1
        pong = client.ping()
        assert pong["type"] == "pong" and pong["closing"] is False


def test_tcp_unknown_op_errors(harness):
    with socket.create_connection((harness.host, harness.port),
                                  timeout=30) as sock:
        f = sock.makefile("rwb")
        f.write(json.dumps({"op": "flush"}).encode() + b"\n")
        f.flush()
        doc = json.loads(f.readline())
        assert doc["type"] == "error" and "unknown op" in doc["error"]


def test_server_close_refuses_new_connections(harness):
    with TCPServeClient(harness.host, harness.port) as client:
        client.request(CHAOS)
    harness.close()
    with pytest.raises(OSError):
        socket.create_connection((harness.host, harness.port), timeout=2)
