"""Tests for repro.analysis: the determinism linter and the race detector."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import (
    Baseline,
    BaselineError,
    RaceDetector,
    SharedStateViolation,
    analyze_source,
    diff_against,
)
from repro.analysis.__main__ import collect_findings, main
from repro.analysis.rules import RULES
from repro.faults import run_chaos
from repro.graphs import WeightedGraph
from repro.protocols.broadcast import FloodProcess
from repro.sim.network import Network
from repro.sim.process import Process

FIXTURES = Path(__file__).parent / "fixtures" / "analysis"


# --------------------------------------------------------------------- #
# Static linter: planted fixtures
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("fixture, rule", [
    ("rs001_set_iteration.py", "RS001"),
    ("rs002_global_rng.py", "RS002"),
    ("rs003_wall_clock.py", "RS003"),
    ("rs004_adjacency.py", "RS004"),
    ("rs005_ctx_write.py", "RS005"),
    ("rs006_unhandled_kind.py", "RS006"),
    ("rs007_dead_handler.py", "RS007"),
    ("rs008_untagged_send.py", "RS008"),
    ("rs009_reachable_nondet.py", "RS009"),
    ("rs010_payload_write.py", "RS010"),
])
def test_fixture_triggers_exactly_its_rule(fixture, rule):
    source = (FIXTURES / fixture).read_text()
    findings = analyze_source(source, path=fixture)
    assert findings, f"{fixture} planted violations but none were found"
    assert {f.rule for f in findings} == {rule}


def test_clean_fixture_triggers_nothing():
    source = (FIXTURES / "clean.py").read_text()
    assert analyze_source(source, path="clean.py") == []


def test_every_rule_has_a_fixture():
    covered = set()
    for file in FIXTURES.glob("rs*.py"):
        for f in analyze_source(file.read_text(), path=file.name):
            covered.add(f.rule)
    assert covered == set(RULES)


def test_findings_are_sorted_and_stable():
    source = (FIXTURES / "rs001_set_iteration.py").read_text()
    a = analyze_source(source, path="x.py")
    b = analyze_source(source, path="x.py")
    assert a == b
    assert a == sorted(a)


def test_allow_marker_suppresses_only_named_rule():
    flagged = "for v in {1, 2}:\n    pass\n"
    assert analyze_source(flagged)  # sanity: fires without the marker
    allowed = "for v in {1, 2}:  # repro: allow RS001 -- test\n    pass\n"
    assert analyze_source(allowed) == []
    wrong_code = "for v in {1, 2}:  # repro: allow RS002 -- test\n    pass\n"
    assert analyze_source(wrong_code)


def test_rule_selection_filters():
    source = (FIXTURES / "rs002_global_rng.py").read_text()
    assert analyze_source(source, rules=["RS001"]) == []
    assert analyze_source(source, rules=["RS002"])


def test_render_format():
    source = "import random\nrandom.random()\n"
    (finding,) = analyze_source(source, path="mod.py")
    text = finding.render()
    assert text.startswith("mod.py:2:")
    assert "RS002" in text


# --------------------------------------------------------------------- #
# Baseline
# --------------------------------------------------------------------- #


def _findings():
    source = (FIXTURES / "rs002_global_rng.py").read_text()
    return analyze_source(source, path="rs002_global_rng.py")


def test_baseline_covers_and_diffs(tmp_path):
    findings = _findings()
    bl = Baseline.from_findings(findings, justification="planted")
    new, stale = diff_against(findings, bl)
    assert new == [] and stale == []
    # A fresh finding not in the baseline is reported as new.
    extra = analyze_source("import time\ntime.time()\n", path="other.py")
    new, stale = diff_against(findings + extra, bl)
    assert new == extra and stale == []
    # Baseline entries matching nothing are stale.
    new, stale = diff_against([], bl)
    assert new == [] and len(stale) == len(findings)


def test_baseline_roundtrip(tmp_path):
    path = tmp_path / "baseline.json"
    bl = Baseline.from_findings(_findings(), justification="planted")
    bl.dump(path)
    loaded = Baseline.load(path)
    for f in _findings():
        assert f in loaded


def test_baseline_rejects_missing_justification(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({
        "version": 1,
        "findings": [{"rule": "RS001", "path": "x.py",
                      "context": "f", "snippet": "for v in s:",
                      "justification": ""}],
    }))
    with pytest.raises(BaselineError):
        Baseline.load(path)


def test_baseline_is_line_drift_stable():
    source = "import random\nrandom.random()\n"
    shifted = "# a new comment line\nimport random\nrandom.random()\n"
    bl = Baseline.from_findings(
        analyze_source(source, path="m.py"), justification="planted")
    new, _stale = diff_against(analyze_source(shifted, path="m.py"), bl)
    assert new == []


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #


def test_cli_exit_codes(tmp_path, capsys):
    clean = FIXTURES / "clean.py"
    dirty = FIXTURES / "rs002_global_rng.py"
    assert main([str(clean)]) == 0
    assert main([str(dirty)]) == 1
    assert main(["--explain"]) == 0
    assert main(["--rules", "RS999", str(clean)]) == 2
    capsys.readouterr()


def test_cli_baseline_flow(tmp_path, capsys):
    dirty = FIXTURES / "rs002_global_rng.py"
    baseline = tmp_path / "baseline.json"
    assert main([str(dirty), "--write-baseline", str(baseline)]) == 0
    assert main([str(dirty), "--baseline", str(baseline)]) == 0
    capsys.readouterr()


def test_cli_jsonl_output(capsys):
    dirty = FIXTURES / "rs003_wall_clock.py"
    assert main([str(dirty), "--format", "jsonl"]) == 1
    lines = [ln for ln in capsys.readouterr().out.splitlines() if ln]
    docs = [json.loads(ln) for ln in lines]
    assert docs and all(d["rule"] == "RS003" for d in docs)
    assert all(d["baselined"] is False for d in docs)


def test_cli_repo_tree_is_clean_or_baselined():
    """The committed source tree must lint clean (the CI gate)."""
    src = Path(__file__).parent.parent / "src" / "repro"
    findings = collect_findings([src])
    assert findings == [], "\n".join(f.render() for f in findings)


def test_cli_flow_restricts_to_flow_rules(capsys):
    # rs002 only plants a base-rule hazard: invisible under --flow.
    assert main(["--flow", str(FIXTURES / "rs002_global_rng.py")]) == 0
    assert main(["--flow", str(FIXTURES / "rs006_unhandled_kind.py")]) == 1
    assert main(["--flow", "--rules", "RS001",
                 str(FIXTURES / "clean.py")]) == 2
    capsys.readouterr()


def test_cli_github_format_annotations(capsys):
    dirty = FIXTURES / "rs006_unhandled_kind.py"
    assert main([str(dirty), "--format", "github"]) == 1
    out = capsys.readouterr().out
    (annotation,) = [ln for ln in out.splitlines()
                     if ln.startswith("::error ")]
    assert "title=RS006" in annotation
    assert "file=" in annotation and "line=9" in annotation


def test_cli_github_format_silent_when_baselined(tmp_path, capsys):
    dirty = FIXTURES / "rs002_global_rng.py"
    baseline = tmp_path / "baseline.json"
    assert main([str(dirty), "--write-baseline", str(baseline)]) == 0
    assert main([str(dirty), "--baseline", str(baseline),
                 "--format", "github"]) == 0
    out = capsys.readouterr().out
    assert "::error" not in out


# --------------------------------------------------------------------- #
# Runtime race detector
# --------------------------------------------------------------------- #


def _two_node_graph():
    g = WeightedGraph(vertices=[0, 1])
    g.add_edge(0, 1, 1.0)
    return g


class _Meddler(Process):
    """Node 0 pokes node 1's process object directly on message receipt."""

    def __init__(self, registry, vid):
        registry[vid] = self
        self.registry = registry
        self.vid = vid
        self.poked = False

    def on_start(self):
        if self.vid == 0:
            self.send(1, "go")
        self.finish(None)

    def on_message(self, frm, payload):
        self.registry[frm].poked = True  # cross-process write


def test_cross_write_raises():
    registry: dict = {}
    net = Network(_two_node_graph(), lambda v: _Meddler(registry, v),
                  race_detect=True)
    with pytest.raises(SharedStateViolation) as exc_info:
        net.run()
    assert exc_info.value.kind == "cross-write"


def test_cross_write_record_mode_collects():
    registry: dict = {}
    net = Network(_two_node_graph(), lambda v: _Meddler(registry, v),
                  race_detect="record")
    net.run()
    violations = net.race_detector.violations
    assert len(violations) == 1
    assert violations[0].kind == "cross-write"


def test_own_writes_are_fine():
    net = Network(_two_node_graph(),
                  lambda v: FloodProcess(v == 0, "hello"), race_detect=True)
    result = net.run()
    assert all(p.finished for p in result.processes.values())


class _PostSendMutator(Process):
    def __init__(self, vid, copy_payload):
        self.vid = vid
        self.copy_payload = copy_payload

    def on_start(self):
        if self.vid == 0:
            buf = ["data"]
            self.send(1, list(buf) if self.copy_payload else buf)
            buf.append("tampered")
        self.finish(None)

    def on_message(self, frm, payload):
        pass


def test_post_send_mutation_raises():
    net = Network(_two_node_graph(),
                  lambda v: _PostSendMutator(v, copy_payload=False),
                  race_detect=True)
    with pytest.raises(SharedStateViolation) as exc_info:
        net.run()
    assert exc_info.value.kind == "payload-mutation"


def test_copied_payload_is_fine():
    net = Network(_two_node_graph(),
                  lambda v: _PostSendMutator(v, copy_payload=True),
                  race_detect=True)
    net.run()  # no violation: the in-flight copy never changed


def test_disabled_mode_leaves_processes_untouched():
    net = Network(_two_node_graph(), lambda v: FloodProcess(v == 0, "x"))
    assert net.race_detector is None
    for proc in net.processes.values():
        assert type(proc) is FloodProcess
        assert "_race_detector" not in proc.__dict__


def test_detector_mode_validation():
    with pytest.raises(ValueError):
        RaceDetector(mode="explode")


def test_run_chaos_classifies_race_as_error():
    outcome = run_chaos(
        _two_node_graph(),
        lambda v: _PostSendMutator(v, copy_payload=False),
        reliable=False, race_detect=True,
    )
    assert outcome.status == "error"
    assert "SharedStateViolation" in outcome.error


def test_race_detect_does_not_change_clean_outcomes():
    g = _two_node_graph()
    base = run_chaos(g, lambda v: FloodProcess(v == 0, "x"), reliable=True)
    checked = run_chaos(g, lambda v: FloodProcess(v == 0, "x"),
                        reliable=True, race_detect=True)
    assert (base.status, base.result.comm_cost, base.result.message_count) \
        == (checked.status, checked.result.comm_cost,
            checked.result.message_count)
