"""ServeService/ServeClient: cache identity, single-flight, teardown.

The acceptance bar this file pins:

* cached responses are **byte-identical** to cold ones for every request
  kind (``payload_bytes`` equality, not just equal dicts);
* single-flight dedupe produces **exact** ServeStats counts — N
  identical concurrent requests = 1 miss + (N-1) coalesces, replays of a
  stored address = pure hits;
* shutdown drains in-flight jobs **before** the pool (and its shm
  segments) is torn down, and a request racing shutdown gets a clean
  :class:`ServeError`, never a crash.
"""

import asyncio
import time

import pytest

from repro.obs import load_jsonl
from repro.replay import verify_trace
from repro.serve import (
    ServeClient,
    ServeError,
    ServeService,
    payload_bytes,
)

REQUESTS = {
    "sweep": {"kind": "sweep", "n": 8, "extra_edges": 6, "graph_seed": 3,
              "drop_rates": [0.0, 0.2], "backend": "python"},
    "chaos": {"kind": "chaos", "protocol": "broadcast", "n": 8,
              "extra_edges": 6, "graph_seed": 3, "backend": "python"},
    "snapshot": {"kind": "snapshot", "spec": ["random_connected", 40, 60],
                 "limit": 8, "backend": "python"},
    "trace": {"kind": "trace", "protocol": "dfs", "n": 8, "extra_edges": 6,
              "graph_seed": 3, "limit": 50, "backend": "python"},
}


@pytest.fixture
def client(tmp_path):
    c = ServeClient(cache_dir=str(tmp_path / "cache"))
    yield c
    c.close()


# --------------------------------------------------------------------- #
# Byte-identical cold vs cached, all four kinds
# --------------------------------------------------------------------- #

@pytest.mark.parametrize("kind", sorted(REQUESTS))
def test_cached_response_byte_identical_to_cold(client, kind):
    request = REQUESTS[kind]
    cold = client.request(request)
    cached = client.request(request)
    assert cold["source"] == "executed" and cold["cached"] is False
    assert cached["source"] == "cache" and cached["cached"] is True
    assert cached["address"] == cold["address"]
    assert payload_bytes(cached["payload"]) == payload_bytes(cold["payload"])
    assert cached["payload_sha"] == cold["payload_sha"]


def test_cache_survives_client_restart(tmp_path):
    with ServeClient(cache_dir=str(tmp_path / "cache")) as c:
        cold = c.request(REQUESTS["chaos"])
    with ServeClient(cache_dir=str(tmp_path / "cache")) as c:
        warm = c.request(REQUESTS["chaos"])
        assert warm["source"] == "cache"
        assert payload_bytes(warm["payload"]) == payload_bytes(cold["payload"])


def test_cached_trace_payload_still_verifies(client):
    cold = client.request(REQUESTS["trace"])
    cached = client.request(REQUESTS["trace"])
    # The cached artifact is not just identical bytes — it is still an
    # *executable* trace: replay it and assert byte-identity end-to-end.
    report = verify_trace(load_jsonl(cached["payload"]))
    assert report.ok, report.describe()
    assert cached["payload"] == cold["payload"]


# --------------------------------------------------------------------- #
# Single-flight: exact ServeStats accounting
# --------------------------------------------------------------------- #

def test_single_flight_counts_exactly(client):
    n = 5
    responses = client.request_many([dict(REQUESTS["chaos"])] * n)
    sources = sorted(r["source"] for r in responses)
    assert sources == ["coalesced"] * (n - 1) + ["executed"]
    shas = {r["payload_sha"] for r in responses}
    assert len(shas) == 1
    stats = client.stats()
    assert stats["misses"] == 1
    assert stats["coalesced"] == n - 1
    assert stats["hits"] == 0
    # Replaying the same batch is now pure cache hits — exact count.
    replay = client.request_many([dict(REQUESTS["chaos"])] * n)
    assert all(r["source"] == "cache" for r in replay)
    stats = client.stats()
    assert stats["hits"] == n
    assert stats["misses"] == 1 and stats["coalesced"] == n - 1
    assert stats["served"] == 2 * n


def test_equivalent_spellings_share_one_execution(client):
    a = dict(REQUESTS["chaos"])
    b = dict(reversed(list(a.items())), drop=0.0, reliable=True)
    responses = client.request_many([a, b, a])
    assert len({r["address"] for r in responses}) == 1
    assert client.stats()["misses"] == 1


def test_stats_block_shape(client):
    client.request(REQUESTS["chaos"])
    stats = client.stats()
    assert stats["queue_depth"] == 0 and stats["max_queue_depth"] >= 1
    assert stats["p50_ms"] is not None and stats["p99_ms"] >= stats["p50_ms"]
    assert stats["store"]["entries"] == 1
    assert stats["errors"] == stats["rejected"] == 0


# --------------------------------------------------------------------- #
# Failure surface: ServeError, never a crash; waiters see it too
# --------------------------------------------------------------------- #

def test_execution_failure_is_serve_error_for_all_waiters(client):
    bad = {"kind": "chaos", "protocol": "no_such_protocol", "n": 8,
           "extra_edges": 6, "backend": "python"}
    with pytest.raises(ServeError):
        client.request(bad)
    stats = client.stats()
    assert stats["errors"] == 1
    assert stats["store"]["entries"] == 0  # failures are never cached


def test_capacity_admission_rejects_cleanly(tmp_path, monkeypatch):
    import repro.serve.service as service_mod

    real = service_mod.execute_request

    def slow(canon, jobs=None):
        time.sleep(0.3)
        return real(canon, jobs=jobs)

    monkeypatch.setattr(service_mod, "execute_request", slow)

    async def main():
        svc = ServeService(max_pending=1)
        first = asyncio.create_task(svc.submit(REQUESTS["chaos"]))
        await asyncio.sleep(0.05)  # first is admitted and executing
        with pytest.raises(ServeError, match="over capacity"):
            await svc.submit(REQUESTS["trace"])
        resp = await first
        await svc.shutdown()
        return resp, svc.stats_snapshot()

    resp, stats = asyncio.run(main())
    assert resp["source"] == "executed"
    assert stats["rejected"] == 1


# --------------------------------------------------------------------- #
# Teardown ordering: drain in-flight, THEN unlink the pool/shm
# --------------------------------------------------------------------- #

def test_shutdown_drains_inflight_before_pool_teardown(monkeypatch):
    import repro.experiments.parallel as par
    import repro.serve.service as service_mod

    real_exec = service_mod.execute_request

    def slow(canon, jobs=None):
        time.sleep(0.3)
        return real_exec(canon, jobs=jobs)

    monkeypatch.setattr(service_mod, "execute_request", slow)

    inflight_at_teardown = []
    real_shutdown = par.shutdown_pool

    svc = ServeService()

    def spy_shutdown():
        inflight_at_teardown.append(svc.inflight)
        real_shutdown()

    monkeypatch.setattr(par, "shutdown_pool", spy_shutdown)

    async def main():
        running = asyncio.create_task(svc.submit(REQUESTS["chaos"]))
        await asyncio.sleep(0.05)           # request is mid-execution
        closer = asyncio.create_task(svc.shutdown())
        await asyncio.sleep(0)              # closing flag is up
        # A request racing the shutdown is refused with a clean error —
        # it neither crashes nor blocks the drain.
        with pytest.raises(ServeError, match="shutting down"):
            await svc.submit(REQUESTS["trace"])
        resp = await running                # admitted job still completes
        await closer
        return resp

    resp = asyncio.run(main())
    assert resp["source"] == "executed"
    # The pool (and its shm segments) was only torn down once nothing was
    # in flight — the ordering contract this test pins.
    assert inflight_at_teardown == [0]
    with pytest.raises(ServeError):
        asyncio.run(svc.submit(REQUESTS["chaos"]))


def test_client_close_is_idempotent_and_final(tmp_path):
    c = ServeClient(cache_dir=str(tmp_path / "cache"))
    c.request(REQUESTS["chaos"])
    c.close()
    c.close()
    with pytest.raises(ServeError):
        c.request(REQUESTS["chaos"])
