"""Tests for the controller (Section 5)."""

import math

import pytest

from repro.control import run_controlled
from repro.graphs import network_params, path_graph, random_connected_graph, ring_graph
from repro.protocols.broadcast import FloodProcess
from repro.sim import Process


class Runaway(Process):
    """A faulty diffusing protocol: floods forever (simulates divergence)."""

    def on_start(self):
        if getattr(self, "start_it", False):
            for v in self.neighbors():
                self.send(v, 0)

    def on_message(self, frm, k):
        for v in self.neighbors():
            self.send(v, k + 1)


def _flood_factory(initiator):
    def factory(v):
        return FloodProcess(v == initiator, payload="data")

    return factory


def _runaway_factory(initiator):
    def factory(v):
        p = Runaway()
        p.start_it = v == initiator
        return p

    return factory


def _uncontrolled_flood_cost(g, initiator):
    from repro.protocols import run_flood

    result, _ = run_flood(g, initiator)
    return result.comm_cost


# --------------------------------------------------------------------- #
# Correct executions are untouched
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("mode", ["naive", "aggregated"])
def test_correct_execution_completes(mode):
    g = random_connected_graph(15, 20, seed=1)
    c_pi = _uncontrolled_flood_cost(g, 0)
    outcome = run_controlled(g, _flood_factory(0), 0, threshold=c_pi, mode=mode)
    assert not outcome.halted
    # every node received the payload
    for v in g.vertices:
        payload, _parent = outcome.inner_result_of(v)
        assert payload == "data"
    # Consumption stays within the flood's structural bound (the exact
    # value is timing-dependent: permits shift which copies arrive first,
    # and first-arrival edges are the ones not echoed back).
    p = network_params(g)
    assert outcome.consumed <= 2 * p.E
    assert outcome.consumed >= p.V  # it did span the network
    assert outcome.proto_cost == pytest.approx(outcome.consumed)


def test_correct_execution_ring_both_modes_agree():
    g = ring_graph(10, weight=4.0)
    c_pi = _uncontrolled_flood_cost(g, 0)
    naive = run_controlled(g, _flood_factory(0), 0, c_pi, mode="naive")
    aggr = run_controlled(g, _flood_factory(0), 0, c_pi, mode="aggregated")
    assert not naive.halted and not aggr.halted
    # On a uniform-weight ring the flood cost is timing-independent.
    assert naive.consumed == pytest.approx(aggr.consumed)


# --------------------------------------------------------------------- #
# Runaway executions are cut off at ~2x threshold
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("mode", ["naive", "aggregated"])
def test_runaway_is_halted(mode):
    g = random_connected_graph(10, 15, seed=2)
    threshold = 200.0
    outcome = run_controlled(
        g, _runaway_factory(0), 0, threshold, mode=mode, max_events=2_000_000
    )
    assert outcome.halted
    # The paper's guarantee: consumption capped by twice the threshold.
    assert outcome.consumed <= 2 * threshold + 1e-9


def test_runaway_halt_scales_with_threshold():
    g = ring_graph(8, weight=1.0)
    small = run_controlled(g, _runaway_factory(0), 0, 50.0)
    large = run_controlled(g, _runaway_factory(0), 0, 500.0)
    assert small.halted and large.halted
    assert small.consumed <= 100.0 + 1e-9
    assert large.consumed <= 1000.0 + 1e-9
    assert large.consumed > small.consumed


# --------------------------------------------------------------------- #
# Overhead bounds (Corollary 5.1)
# --------------------------------------------------------------------- #


def test_aggregated_overhead_polylog():
    g = random_connected_graph(30, 45, seed=3)
    c_pi = _uncontrolled_flood_cost(g, 0)
    outcome = run_controlled(g, _flood_factory(0), 0, c_pi, mode="aggregated")
    bound = c_pi * math.log2(max(4.0, c_pi)) ** 2
    assert outcome.control_cost <= bound
    assert outcome.total_cost <= c_pi + bound


class ChunkStream(Process):
    """Diffusing protocol with repeated sends: flood a wake-up, then every
    non-initiator streams K data chunks back to its flood parent.  Nodes
    that send many times are exactly where request aggregation pays off."""

    def __init__(self, start_it, chunks):
        self.start_it = start_it
        self.chunks = chunks
        self._joined = start_it

    def on_start(self):
        if self.start_it:
            for v in self.neighbors():
                self.send(v, ("wake",))

    def on_message(self, frm, payload):
        if payload[0] == "wake" and not self._joined:
            self._joined = True
            for v in self.neighbors():
                if v != frm:
                    self.send(v, ("wake",))
            for i in range(self.chunks):
                self.send(frm, ("chunk", i))


def test_aggregated_cheaper_than_naive_on_repeated_senders():
    # Deep tree + many sends per node: the naive controller pays one
    # root round trip per chunk, the aggregated one O(log chunks) per node.
    g = path_graph(20, weight=2.0)
    chunks = 64
    threshold = 2.0 * (2 * g.num_edges + chunks * (g.num_vertices - 1))

    def factory(v):
        return ChunkStream(v == 0, chunks)

    naive = run_controlled(g, factory, 0, threshold, mode="naive")
    aggr = run_controlled(g, factory, 0, threshold, mode="aggregated")
    assert not naive.halted and not aggr.halted
    assert naive.consumed == pytest.approx(aggr.consumed)
    assert aggr.control_cost < naive.control_cost / 4


def test_bad_mode_rejected():
    g = ring_graph(5)
    with pytest.raises(ValueError):
        run_controlled(g, _flood_factory(0), 0, 10.0, mode="turbo")
