"""Differential harness: NumPy kernels vs the pure-Python oracles.

Every vectorized kernel in :mod:`repro.graphs.npkernels` claims
*value-identity* with its pure-Python oracle — same floats bit-for-bit,
same MST edge lists under the pinned tie-break rules, same exceptions.
This module is the proof: seeded graph families (paths, stars, grids,
random integral / fractional / mixed-weight graphs, the paper's
``G_n``/``G_n^i`` lower-bound families, disconnected and edge-case
graphs) are pushed through both backends and compared exactly — no
approx, no tolerance.

Also pinned here: the backend selector semantics (env var, override,
graceful no-numpy fallback), numpy-side cache invalidation, the Dial
bucket-queue cap fallback, and serial == pool chaos-row byte-identity
under both backends.
"""

import heapq
import math
import random

import pytest

from repro.graphs import (
    WeightedGraph,
    binary_tree,
    caterpillar_graph,
    complete_graph,
    grid_graph,
    heavy_edge_clock_graph,
    hypercube_graph,
    lower_bound_graph,
    lower_bound_split_graph,
    param_cache,
    path_graph,
    prim_mst,
    random_connected_graph,
    ring_graph,
    spoke_graph,
    star_graph,
)
from repro.graphs import csr as csr_module
from repro.graphs import npkernels as npk
from repro.graphs.csr import (
    CSRGraph,
    all_sources_scan,
    csr_kruskal_mst,
    csr_prim_mst,
    sssp_maps,
)
from repro.graphs.mst import kruskal_mst_dicts, prim_mst_dicts

requires_numpy = pytest.mark.skipif(
    not npk.numpy_available(), reason="numpy not installed"
)


# --------------------------------------------------------------------- #
# Graph families
# --------------------------------------------------------------------- #


def _fractional_graph(seed: int) -> WeightedGraph:
    """Random connected graph with dyadic fractional weights (k/8).

    Dyadic rationals are exact in binary floating point, so equal-length
    paths produce *real* float ties — the hardest case for tie-break
    identity between the heap and the batched relaxation.
    """
    rng = random.Random(seed)
    g = random_connected_graph(14, 16, seed=seed)
    for u, v, _w in list(g.edges()):
        g.add_edge(u, v, rng.randint(1, 32) / 8)
    return g


def _mixed_weight_graph(seed: int) -> WeightedGraph:
    """Integral and fractional weights interleaved in one graph."""
    rng = random.Random(seed)
    g = random_connected_graph(13, 15, seed=seed)
    for i, (u, v, _w) in enumerate(list(g.edges())):
        if i % 3 == 0:
            g.add_edge(u, v, rng.randint(1, 24) / 4)
    return g


def _float_integral_graph() -> WeightedGraph:
    """Weights that are floats but integral-valued (unit-weight idiom)."""
    g = grid_graph(4, 5, weight=2.0)
    g.add_edge((0, 0), (3, 4), 7.0)
    return g


def _disconnected_graph() -> WeightedGraph:
    g = random_connected_graph(8, 6, seed=3)
    h = path_graph(4)
    for u, v, w in h.edges():
        g.add_edge(("b", u), ("b", v), w)
    g.add_vertex("isolated")
    return g


FAMILIES = [
    ("empty", WeightedGraph),
    ("single", lambda: WeightedGraph(vertices=["v"])),
    ("path", lambda: path_graph(9)),
    ("path_w3", lambda: path_graph(6, weight=3)),
    ("ring", lambda: ring_graph(11)),
    ("star", lambda: star_graph(8)),
    ("grid", lambda: grid_graph(5, 6)),
    ("complete", lambda: complete_graph(7)),
    ("binary_tree", lambda: binary_tree(4)),
    ("hypercube", lambda: hypercube_graph(4)),
    ("caterpillar", lambda: caterpillar_graph(6, 2)),
    ("spoke", lambda: spoke_graph(8, 16.0, 1.0)),
    ("heavy_clock", lambda: heavy_edge_clock_graph(6, 50.0)),
    ("Gn_8", lambda: lower_bound_graph(8)),
    ("Gn_16", lambda: lower_bound_graph(16)),
    ("Gni_8_3", lambda: lower_bound_split_graph(8, 3)),
    ("rand_sparse", lambda: random_connected_graph(18, 10, seed=5)),
    ("rand_dense", lambda: random_connected_graph(12, 40, seed=6)),
    ("rand_fractional", lambda: _fractional_graph(7)),
    ("rand_mixed", lambda: _mixed_weight_graph(8)),
    ("float_integral", _float_integral_graph),
    ("disconnected", _disconnected_graph),
]

FAMILY_IDS = [name for name, _ in FAMILIES]
FAMILY_FACTORIES = [factory for _, factory in FAMILIES]


@pytest.fixture(params=FAMILY_FACTORIES, ids=FAMILY_IDS)
def family_graph(request):
    return request.param()


def _np_graph(graph: WeightedGraph) -> npk.NPGraph:
    return npk.NPGraph(CSRGraph(graph))


# --------------------------------------------------------------------- #
# Kernel-by-kernel identity over every family
# --------------------------------------------------------------------- #


@requires_numpy
def test_scan_identical(family_graph):
    csr = CSRGraph(family_graph)
    oracle = all_sources_scan(csr)
    got = np_scan = npk.np_all_sources_scan(npk.NPGraph(csr))
    assert got == oracle
    # exact types too: plain floats, not numpy scalars
    assert all(type(e) is float for e in np_scan.ecc)
    assert type(np_scan.diameter) is float
    assert type(np_scan.max_neighbor_distance) is float


@requires_numpy
def test_prim_identical(family_graph):
    csr = CSRGraph(family_graph)
    npg = npk.NPGraph(csr)
    if family_graph.num_vertices and not family_graph.is_connected():
        with pytest.raises(ValueError):
            csr_prim_mst(csr)
        with pytest.raises(ValueError):
            npk.np_prim_mst(npg)
        return
    if family_graph.num_vertices == 0:
        assert npk.np_prim_mst(npg).num_vertices == 0
        return
    oracle = csr_prim_mst(csr)
    dicts = prim_mst_dicts(family_graph)
    got = npk.np_prim_mst(npg)
    assert list(got.edges()) == list(oracle.edges()) == list(dicts.edges())
    assert got.vertices == oracle.vertices
    assert repr(got.total_weight()) == repr(oracle.total_weight())


@requires_numpy
def test_kruskal_identical(family_graph):
    csr = CSRGraph(family_graph)
    npg = npk.NPGraph(csr)
    if family_graph.num_vertices and not family_graph.is_connected():
        with pytest.raises(ValueError):
            csr_kruskal_mst(csr)
        with pytest.raises(ValueError):
            npk.np_kruskal_mst(npg)
        return
    oracle = csr_kruskal_mst(csr)
    got = npk.np_kruskal_mst(npg)
    assert list(got.edges()) == list(oracle.edges())
    assert got.vertices == oracle.vertices
    assert repr(got.total_weight()) == repr(oracle.total_weight())
    if family_graph.num_vertices:
        assert list(got.edges()) == list(kruskal_mst_dicts(family_graph).edges())


@requires_numpy
def test_sssp_dist_identical(family_graph):
    csr = CSRGraph(family_graph)
    npg = npk.NPGraph(csr)
    for s in range(min(csr.n, 6)):
        dist_map, _parent = sssp_maps(csr, csr.verts[s])
        got = npk.np_sssp_dist(npg, s)
        want = [dist_map.get(v, math.inf) for v in csr.verts]
        assert got == want
        # default delay propagation is exactly SSSP
        assert npk.np_delay_propagation(npg, s) == want


# --------------------------------------------------------------------- #
# Delay propagation against an independent directed oracle
# --------------------------------------------------------------------- #


def _directed_dijkstra(csr, delays, source):
    dist = [math.inf] * csr.n
    dist[source] = 0.0
    heap = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue
        for j in range(csr.indptr[u], csr.indptr[u + 1]):
            v = csr.indices[j]
            nd = d + delays[j]
            if nd < dist[v]:
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return dist


@requires_numpy
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_delay_propagation_asymmetric(seed):
    g = random_connected_graph(15, 18, seed=seed)
    csr = CSRGraph(g)
    npg = npk.NPGraph(csr)
    rng = random.Random(seed + 100)
    # Per-direction delays in [0, w], including exact zeros — each
    # orientation of an edge draws independently (the paper's adversary
    # may delay the two directions differently).
    delays = [
        w * rng.choice((0.0, 0.25, 0.5, 1.0)) for w in csr.weights
    ]
    for source in range(0, csr.n, 4):
        got = npk.np_delay_propagation(npg, source, delays)
        assert got == _directed_dijkstra(csr, delays, source)


@requires_numpy
def test_delay_propagation_validation():
    npg = _np_graph(path_graph(4))
    with pytest.raises(ValueError, match="one entry per directed"):
        npk.np_delay_propagation(npg, 0, [1.0])
    with pytest.raises(ValueError, match="non-negative"):
        npk.np_delay_propagation(npg, 0, [-1.0] * npg.m2)
    with pytest.raises(IndexError):
        npk.np_delay_propagation(npg, 99)
    with pytest.raises(IndexError):
        npk.np_sssp_dist(npg, -1)


@requires_numpy
def test_reverse_permutation_is_involution():
    npg = _np_graph(random_connected_graph(12, 20, seed=9))
    rev = npg.rev
    for j in range(npg.m2):
        assert rev[int(rev[j])] == j
        assert int(npg.indices[int(rev[j])]) == int(npg.edge_u[j])


# --------------------------------------------------------------------- #
# MST tie-break rule, pinned explicitly
# --------------------------------------------------------------------- #
#
# Rule (identical for every implementation):
#   * Prim: among equal-weight frontier edges, the one pushed first wins;
#     pushes happen root-adjacency first, then each newly added vertex's
#     adjacency in CSR (= insertion) order.
#   * Kruskal: stable sort by weight — graph.edges() first-encounter
#     order among equal weights.


def _tie_square() -> WeightedGraph:
    g = WeightedGraph()
    g.add_edge("a", "b", 1)
    g.add_edge("b", "c", 1)
    g.add_edge("c", "d", 1)
    g.add_edge("d", "a", 1)
    return g


def test_prim_tie_break_pinned(each_backend):
    # From root a: pushes (a,b) then (a,d); pop (a,b) -> push (b,c);
    # pop (a,d) [earlier push beats (b,c)'s]; pop (b,c).  Edge (c,d)
    # never enters the tree.
    tree = prim_mst(_tie_square())
    assert list(tree.edges()) == [("a", "b", 1), ("a", "d", 1), ("b", "c", 1)]


def test_kruskal_tie_break_pinned(each_backend):
    from repro.graphs import kruskal_mst

    # edges() order: (a,b), (a,d), (b,c), (c,d); stable sort keeps it;
    # (c,d) closes the cycle and is rejected.
    tree = kruskal_mst(_tie_square())
    assert list(tree.edges()) == [("a", "b", 1), ("a", "d", 1), ("b", "c", 1)]


@requires_numpy
def test_prim_equal_weight_randomized():
    # All-unit weights maximize tie pressure; every implementation must
    # still pick the same tree edge-for-edge.
    for seed in range(8):
        g = random_connected_graph(16, 20, seed=seed, max_weight=1)
        csr = CSRGraph(g)
        got = npk.np_prim_mst(npk.NPGraph(csr))
        assert list(got.edges()) == list(csr_prim_mst(csr).edges())


@requires_numpy
def test_total_weight_repr_preserves_int_vs_float():
    ints = random_connected_graph(10, 8, seed=2)  # int weights
    fracs = _fractional_graph(3)  # float weights
    for g in (ints, fracs):
        csr = CSRGraph(g)
        npg = npk.NPGraph(csr)
        for build in (npk.np_prim_mst, npk.np_kruskal_mst):
            total = build(npg).total_weight()
            oracle = csr_prim_mst(csr).total_weight()
            assert type(total) is type(oracle)
    # int graphs must sum to a plain int, never numpy.float64
    assert type(npk.np_prim_mst(_np_graph(ints)).total_weight()) is int


# --------------------------------------------------------------------- #
# Randomized differential sweep
# --------------------------------------------------------------------- #


@requires_numpy
@pytest.mark.parametrize("seed", range(12))
def test_randomized_sweep(seed):
    rng = random.Random(seed * 7919 + 1)
    n = rng.randrange(2, 22)
    extra = rng.randrange(0, 2 * n)
    g = random_connected_graph(n, extra, seed=seed,
                               max_weight=rng.choice((1, 3, 10, 1000)))
    if seed % 3 == 0:
        for u, v, _w in list(g.edges())[:: 2]:
            g.add_edge(u, v, rng.randint(1, 64) / 16)
    if seed % 4 == 0:
        g.add_vertex(("lonely", seed))  # disconnect
    csr = CSRGraph(g)
    npg = npk.NPGraph(csr)
    assert npk.np_all_sources_scan(npg) == all_sources_scan(csr)
    source = rng.randrange(csr.n)
    dist_map, _ = sssp_maps(csr, csr.verts[source])
    assert npk.np_sssp_dist(npg, source) == [
        dist_map.get(v, math.inf) for v in csr.verts
    ]
    if g.is_connected():
        assert (list(npk.np_prim_mst(npg).edges())
                == list(csr_prim_mst(csr).edges()))
        assert (list(npk.np_kruskal_mst(npg).edges())
                == list(csr_kruskal_mst(csr).edges()))
    else:
        with pytest.raises(ValueError):
            npk.np_prim_mst(npg)


# --------------------------------------------------------------------- #
# WeightedGraph edge cases flow through both backends identically
# --------------------------------------------------------------------- #


def test_self_loop_rejected_before_any_kernel(each_backend):
    g = path_graph(3)
    with pytest.raises(ValueError):
        g.add_edge(1, 1, 1.0)
    assert prim_mst(g).num_vertices == 3


def test_parallel_edge_overwrite_reflected(each_backend):
    g = WeightedGraph()
    g.add_edge("a", "b", 5)
    g.add_edge("b", "c", 1)
    cache = param_cache(g)
    assert cache.diameter() == 6.0
    g.add_edge("a", "b", 2)  # parallel edge = overwrite, bumps version
    assert cache.diameter() == 3.0
    assert list(prim_mst(g).edges()) == [("a", "b", 2), ("b", "c", 1)]


# --------------------------------------------------------------------- #
# Backend selector semantics
# --------------------------------------------------------------------- #


def test_selector_env_values(monkeypatch):
    monkeypatch.setenv(npk.KERNEL_BACKEND_ENV, "python")
    assert npk.requested_backend() == "python"
    assert npk.kernel_backend() == "python"
    monkeypatch.setenv(npk.KERNEL_BACKEND_ENV, "auto")
    assert npk.kernel_backend() == (
        "numpy" if npk.numpy_available() else "python"
    )
    monkeypatch.delenv(npk.KERNEL_BACKEND_ENV)
    assert npk.requested_backend() == "auto"
    monkeypatch.setenv(npk.KERNEL_BACKEND_ENV, "cupy")
    with pytest.raises(ValueError, match="not a valid kernel backend"):
        npk.requested_backend()


def test_selector_override_beats_env(monkeypatch):
    monkeypatch.setenv(npk.KERNEL_BACKEND_ENV, "python")
    npk.set_kernel_backend("auto")
    try:
        assert npk.requested_backend() == "auto"
    finally:
        npk.set_kernel_backend(None)
    assert npk.requested_backend() == "python"
    with pytest.raises(ValueError):
        npk.set_kernel_backend("fortran")


def test_selector_graceful_without_numpy(monkeypatch):
    # Simulate an environment with no numpy: even an explicit
    # REPRO_KERNEL_BACKEND=numpy must fall back to python silently.
    monkeypatch.setattr(npk, "_np_module", None)
    monkeypatch.setattr(npk, "_np_checked", True)
    monkeypatch.setenv(npk.KERNEL_BACKEND_ENV, "numpy")
    assert not npk.numpy_available()
    assert npk.kernel_backend() == "python"
    info = npk.backend_info()
    assert info == {"requested": "numpy", "resolved": "python", "numpy": None}
    with pytest.raises(RuntimeError, match="numpy is not available"):
        npk.NPGraph(CSRGraph(path_graph(3)))
    # public API keeps working on the python kernels
    tree = prim_mst(path_graph(4))
    assert tree.num_edges == 3


def test_backend_info_reports_versions():
    info = npk.backend_info()
    assert info["requested"] in ("auto", "numpy", "python")
    assert info["resolved"] in ("numpy", "python")
    if npk.numpy_available():
        assert isinstance(info["numpy"], str)


# --------------------------------------------------------------------- #
# Cache integration: numpy snapshots share the version invalidation
# --------------------------------------------------------------------- #


@requires_numpy
def test_cache_flushes_numpy_snapshot_on_mutation(monkeypatch):
    monkeypatch.setenv(npk.KERNEL_BACKEND_ENV, "numpy")
    g = random_connected_graph(10, 8, seed=1)
    cache = param_cache(g)
    d1 = cache.diameter()
    assert cache.np_builds == 1
    first = cache.npg()
    assert first.version == g.version
    assert cache.npg() is first  # memoized within a version
    assert cache.np_builds == 1
    u, v, w = next(iter(g.edges()))
    g.add_edge(u, v, w + 100)  # overwrite bumps version
    d2 = cache.diameter()
    assert cache.np_builds == 2
    second = cache.npg()
    assert second is not first
    assert second.version == g.version
    assert cache.stats()["np_builds"] == 2
    assert d2 >= 0 and d1 >= 0


@requires_numpy
def test_python_backend_never_builds_numpy_snapshot(monkeypatch):
    monkeypatch.setenv(npk.KERNEL_BACKEND_ENV, "python")
    g = random_connected_graph(10, 8, seed=1)
    cache = param_cache(g)
    cache.network_params()
    assert cache.np_builds == 0


# --------------------------------------------------------------------- #
# Dial bucket cap: heavy integral weights fall back to the heap
# --------------------------------------------------------------------- #


def test_dial_cap_heavy_lower_bound_family():
    # G_n carries bypass edges of weight X^4 (X = n + 1): at n = 40 the
    # Dial bucket count would be ~1.1e8 lists — the cap must route this
    # to the heap discipline (and the scan must still be exact).
    g = lower_bound_graph(40)
    csr = CSRGraph(g)
    assert csr.iadj is not None  # weights are integral...
    bound = (csr.n - 1) * csr.wmax + 1
    assert bound > csr_module._DIAL_BOUND_CAP  # ...but far too heavy
    scan = all_sources_scan(csr)
    # independent check against per-source heap Dijkstra
    for s in (0, csr.n // 2, csr.n - 1):
        dist_map, _ = sssp_maps(csr, csr.verts[s])
        assert scan.ecc[s] == max(dist_map.values())


def test_dial_and_heap_disciplines_agree(monkeypatch):
    g = random_connected_graph(16, 22, seed=11)
    dial = all_sources_scan(CSRGraph(g))
    monkeypatch.setattr(csr_module, "_DIAL_BOUND_CAP", 0)
    heap = all_sources_scan(CSRGraph(g))
    assert dial == heap


@requires_numpy
def test_heavy_weights_numpy_still_identical():
    g = lower_bound_graph(40)
    csr = CSRGraph(g)
    assert npk.np_all_sources_scan(npk.NPGraph(csr)) == all_sources_scan(csr)


# --------------------------------------------------------------------- #
# Dense Floyd-Warshall path vs the blocked relaxation path
# --------------------------------------------------------------------- #


@requires_numpy
@pytest.mark.parametrize("factory", [
    lambda: complete_graph(40),
    lambda: random_connected_graph(64, 900, seed=21),
    lambda: grid_graph(7, 7),
    lambda: lower_bound_graph(24),
    lambda: _disconnected_graph(),
])
def test_fw_and_relaxation_paths_agree(factory, monkeypatch):
    # Both numpy scan formulations must be value-identical on any graph
    # the FW dispatch accepts; the oracle pins them both.
    csr = CSRGraph(factory())
    npg = npk.NPGraph(csr)
    assert npk._fw_applicable(npg)
    fw_scan = npk.np_all_sources_scan(npg)
    monkeypatch.setattr(npk, "_fw_applicable", lambda _npg: False)
    bf_scan = npk.np_all_sources_scan(npg)
    assert fw_scan == bf_scan == all_sources_scan(csr)


@requires_numpy
def test_fw_dispatch_boundaries():
    # Fractional weights: never FW (min-plus would re-associate sums).
    assert not npk._fw_applicable(npk.NPGraph(CSRGraph(_fractional_graph(7))))
    # Large sparse: blocked relaxation (work should scale with m, not n^2).
    tree = random_connected_graph(600, 0, seed=2)
    assert not npk._fw_applicable(npk.NPGraph(CSRGraph(tree)))
    # Large dense clears the density threshold.
    dense = random_connected_graph(600, 24000, seed=2)
    npg = npk.NPGraph(CSRGraph(dense))
    assert npg.m2 * npk._FW_DENSE_FACTOR >= npg.n * npg.n
    assert npk._fw_applicable(npg)
    # Integer weights too heavy for the int32 sentinel fall back too.
    heavy = path_graph(3, (1 << 30))
    assert not npk._fw_applicable(npk.NPGraph(CSRGraph(heavy)))


@requires_numpy
def test_fw_sentinel_boundary_weights_exact():
    # int_bound == _FW_SENTINEL exactly: the largest admissible weights.
    # SENT + SENT must not overflow int32, or an "unreached" candidate
    # would wrap negative and beat every real distance.
    w = (1 << 29) - 1
    g = path_graph(3, w)
    csr = CSRGraph(g)
    npg = npk.NPGraph(csr)
    assert npg.int_bound == npk._FW_SENTINEL
    assert npk._fw_applicable(npg)
    assert npk.np_all_sources_scan(npg) == all_sources_scan(csr)


# --------------------------------------------------------------------- #
# Fractional-weight fallback (the thin path, now covered directly)
# --------------------------------------------------------------------- #


def test_float_integral_weights_use_dial(each_backend):
    g = _float_integral_graph()
    csr = CSRGraph(g)
    assert csr.iadj is not None  # float-typed but integral: Dial eligible
    cache = param_cache(g)
    assert cache.diameter() == all_sources_scan(csr).diameter


def test_mixed_weights_use_heap(each_backend):
    g = _mixed_weight_graph(5)
    csr = CSRGraph(g)
    assert csr.iadj is None  # fractional: Dial ineligible
    cache = param_cache(g)
    scan = all_sources_scan(csr)
    assert cache.diameter() == scan.diameter
    assert cache.max_neighbor_distance() == scan.max_neighbor_distance


@requires_numpy
@pytest.mark.parametrize("factory", [
    _fractional_graph, _mixed_weight_graph,
], ids=["fractional", "mixed"])
def test_fractional_backends_agree(factory):
    g = factory(4)
    csr = CSRGraph(g)
    npg = npk.NPGraph(csr)
    assert not npg.use_int  # float regime
    assert npk.np_all_sources_scan(npg) == all_sources_scan(csr)
    assert (list(npk.np_prim_mst(npg).edges())
            == list(csr_prim_mst(csr).edges()))


# --------------------------------------------------------------------- #
# Serial == pool byte-identity holds under both backends
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("backend", ["python", "numpy"])
def test_chaos_rows_serial_equals_pool_per_backend(backend, monkeypatch):
    if backend == "numpy" and not npk.numpy_available():
        pytest.skip("numpy not installed")
    from repro.experiments.parallel import chaos_rows, shutdown_pool

    monkeypatch.setenv(npk.KERNEL_BACKEND_ENV, backend)
    kw = dict(n=10, extra_edges=12, graph_seed=4, drop_rates=(0.0, 0.2))
    try:
        serial = chaos_rows(jobs=1, **kw)
        pooled = chaos_rows(jobs=2, force="pool", **kw)
    finally:
        shutdown_pool()
    assert serial == pooled


@requires_numpy
def test_chaos_rows_identical_across_backends(monkeypatch):
    from repro.experiments.parallel import chaos_rows

    kw = dict(n=8, extra_edges=6, graph_seed=3, drop_rates=(0.0, 0.1),
              jobs=1)
    monkeypatch.setenv(npk.KERNEL_BACKEND_ENV, "python")
    py_rows = chaos_rows(**kw)
    monkeypatch.setenv(npk.KERNEL_BACKEND_ENV, "numpy")
    np_rows = chaos_rows(**kw)
    assert py_rows == np_rows
