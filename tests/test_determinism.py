"""Property-based determinism: same inputs, byte-identical outcomes.

The whole experiment layer rests on runs being pure functions of
(graph, seed, fault plan).  These tests pin that down three ways:

* every chaos-matrix protocol, run twice from scratch with the same
  inputs, produces a byte-identical metrics fingerprint (costs, counts,
  per-tag buckets, fault counters, status, answer);
* the parallel sweep engine returns the exact rows of the serial path
  (and of the legacy in-process ``chaos_matrix``), regardless of worker
  count;
* the EventQueue fires a randomized interleaving of schedule calls in
  the identical order on replay.
"""

import pytest

from repro.experiments.chaos import chaos_matrix, make_cases
from repro.experiments.parallel import chaos_rows, summarize_chaos_entry
from repro.faults import FaultPlan, run_chaos
from repro.sim.events import EventQueue

PROTOCOLS = ("broadcast", "convergecast", "dfs", "mst_ghs", "global_fn(slt)")


def _chaos_fingerprint(protocol: str, *, drop: float, reliable: bool) -> bytes:
    """Run one protocol under one fault plan, from scratch, and flatten
    everything observable to bytes."""
    case = {c.name: c for c in make_cases(10, 12, 4)}[protocol]
    plan = FaultPlan.message_loss(drop, seed=13) if drop > 0 else None
    outcome = run_chaos(case.graph, case.factory, plan=plan,
                        reliable=reliable, watchdog_time=1e6,
                        answer=case.answer)
    m = outcome.result.metrics if outcome.result else None
    return repr((
        outcome.status,
        outcome.answer,
        outcome.ack_cost, outcome.retry_cost, outcome.retry_count,
        outcome.result.status if outcome.result else None,
        (m.comm_cost, m.message_count, m.completion_time,
         m.last_finish_time,
         sorted(m.cost_by_tag.items()),
         sorted(m.count_by_tag.items()),
         sorted(m.fault_counts.items())) if m else None,
    )).encode()


@pytest.mark.parametrize("protocol", PROTOCOLS)
@pytest.mark.parametrize("drop,reliable", [(0.0, False), (0.2, True)])
def test_same_inputs_byte_identical_outcome(protocol, drop, reliable):
    first = _chaos_fingerprint(protocol, drop=drop, reliable=reliable)
    second = _chaos_fingerprint(protocol, drop=drop, reliable=reliable)
    assert first == second


def test_serial_and_parallel_sweeps_merge_identically():
    kw = dict(n=10, extra_edges=12, graph_seed=4, drop_rates=(0.0, 0.2))
    serial = chaos_rows(jobs=1, **kw)
    parallel = chaos_rows(jobs=2, **kw)
    assert serial == parallel


def test_engine_rows_match_legacy_chaos_matrix():
    legacy = [
        summarize_chaos_entry(e)
        for e in chaos_matrix(make_cases(10, 12, 4), drop_rates=(0.0, 0.2))
    ]
    engine = chaos_rows(jobs=1, n=10, extra_edges=12, graph_seed=4,
                        drop_rates=(0.0, 0.2))
    assert legacy == engine


def test_parallel_sweep_covers_all_protocols_and_rates():
    rows = chaos_rows(jobs=2, n=10, extra_edges=12, graph_seed=4,
                      drop_rates=(0.0, 0.2))
    combos = {(r["protocol"], r["drop"], r["reliable"]) for r in rows}
    for proto in PROTOCOLS:
        assert (proto, 0.0, True) in combos
        assert (proto, 0.2, True) in combos
        assert (proto, 0.2, False) in combos
    # Reliable runs complete with the fault-free answer (status "ok").
    assert all(r["status"] == "ok" for r in rows if r["reliable"])


def _random_interleaving_trace(seed: int) -> list:
    """Drive the queue with a seeded random mix of all four scheduling
    entry points, interrupted drains, and same-time storms; return the
    firing order."""
    import random

    rng = random.Random(seed)
    q = EventQueue()
    fired = []
    counter = [0]

    def make(i):
        return lambda: fired.append(i)

    def note(i):
        fired.append(i)

    for _ in range(40):
        for _ in range(rng.randrange(1, 6)):
            i = counter[0]
            counter[0] += 1
            kind = rng.randrange(4)
            delay = rng.choice([0.0, 0.5, 1.0, 1.0, 2.5])
            if kind == 0:
                q.schedule(delay, make(i))
            elif kind == 1:
                q.schedule_at(q.now + delay, make(i))
            elif kind == 2:
                q.schedule_call(delay, note, i)
            else:
                q.schedule_call_at(q.now + delay, note, i)
        # Randomly drain a bounded slice or everything, so interleavings
        # also cross interrupted-run boundaries.
        if rng.random() < 0.5:
            q.run(max_events=rng.randrange(1, 5))
        else:
            q.run()
    q.run()
    return fired


@pytest.mark.parametrize("seed", [0, 1, 7, 42, 1234])
def test_event_queue_replay_is_identical(seed):
    assert _random_interleaving_trace(seed) == _random_interleaving_trace(seed)
