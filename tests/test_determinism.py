"""Property-based determinism: same inputs, byte-identical outcomes.

The whole experiment layer rests on runs being pure functions of
(graph, seed, fault plan).  These tests pin that down three ways:

* every chaos-matrix protocol, run twice from scratch with the same
  inputs, produces a byte-identical metrics fingerprint (costs, counts,
  per-tag buckets, fault counters, status, answer);
* the parallel sweep engine returns the exact rows of the serial path
  (and of the legacy in-process ``chaos_matrix``), regardless of worker
  count;
* the EventQueue fires a randomized interleaving of schedule calls in
  the identical order on replay.
"""

from pathlib import Path

import pytest

from repro.experiments.chaos import chaos_matrix, make_cases
from repro.experiments.parallel import chaos_rows, summarize_chaos_entry
from repro.faults import FaultPlan, run_chaos
from repro.sim.events import EventQueue

PROTOCOLS = ("broadcast", "convergecast", "dfs", "mst_ghs", "mst_fast",
             "global_fn(slt)")


def _chaos_fingerprint(protocol: str, *, drop: float, reliable: bool) -> bytes:
    """Run one protocol under one fault plan, from scratch, and flatten
    everything observable to bytes."""
    case = {c.name: c for c in make_cases(10, 12, 4)}[protocol]
    plan = FaultPlan.message_loss(drop, seed=13) if drop > 0 else None
    outcome = run_chaos(case.graph, case.factory, plan=plan,
                        reliable=reliable, watchdog_time=1e6,
                        answer=case.answer)
    m = outcome.result.metrics if outcome.result else None
    return repr((
        outcome.status,
        outcome.answer,
        outcome.ack_cost, outcome.retry_cost, outcome.retry_count,
        outcome.result.status if outcome.result else None,
        (m.comm_cost, m.message_count, m.completion_time,
         m.last_finish_time,
         sorted(m.cost_by_tag.items()),
         sorted(m.count_by_tag.items()),
         sorted(m.fault_counts.items())) if m else None,
    )).encode()


@pytest.mark.parametrize("protocol", PROTOCOLS)
@pytest.mark.parametrize("drop,reliable", [(0.0, False), (0.2, True)])
def test_same_inputs_byte_identical_outcome(protocol, drop, reliable):
    first = _chaos_fingerprint(protocol, drop=drop, reliable=reliable)
    second = _chaos_fingerprint(protocol, drop=drop, reliable=reliable)
    assert first == second


def test_serial_and_parallel_sweeps_merge_identically():
    kw = dict(n=10, extra_edges=12, graph_seed=4, drop_rates=(0.0, 0.2))
    serial = chaos_rows(jobs=1, **kw)
    parallel = chaos_rows(jobs=2, **kw)
    assert serial == parallel


def test_engine_rows_match_legacy_chaos_matrix():
    legacy = [
        summarize_chaos_entry(e)
        for e in chaos_matrix(make_cases(10, 12, 4), drop_rates=(0.0, 0.2))
    ]
    engine = chaos_rows(jobs=1, n=10, extra_edges=12, graph_seed=4,
                        drop_rates=(0.0, 0.2))
    assert legacy == engine


def test_parallel_sweep_covers_all_protocols_and_rates():
    rows = chaos_rows(jobs=2, n=10, extra_edges=12, graph_seed=4,
                      drop_rates=(0.0, 0.2))
    combos = {(r["protocol"], r["drop"], r["reliable"]) for r in rows}
    for proto in PROTOCOLS:
        assert (proto, 0.0, True) in combos
        assert (proto, 0.2, True) in combos
        assert (proto, 0.2, False) in combos
    # Reliable runs complete with the fault-free answer (status "ok").
    assert all(r["status"] == "ok" for r in rows if r["reliable"])


def _random_interleaving_trace(seed: int) -> list:
    """Drive the queue with a seeded random mix of all four scheduling
    entry points, interrupted drains, and same-time storms; return the
    firing order."""
    import random

    rng = random.Random(seed)
    q = EventQueue()
    fired = []
    counter = [0]

    def make(i):
        return lambda: fired.append(i)

    def note(i):
        fired.append(i)

    for _ in range(40):
        for _ in range(rng.randrange(1, 6)):
            i = counter[0]
            counter[0] += 1
            kind = rng.randrange(4)
            delay = rng.choice([0.0, 0.5, 1.0, 1.0, 2.5])
            if kind == 0:
                q.schedule(delay, make(i))
            elif kind == 1:
                q.schedule_at(q.now + delay, make(i))
            elif kind == 2:
                q.schedule_call(delay, note, i)
            else:
                q.schedule_call_at(q.now + delay, note, i)
        # Randomly drain a bounded slice or everything, so interleavings
        # also cross interrupted-run boundaries.
        if rng.random() < 0.5:
            q.run(max_events=rng.randrange(1, 5))
        else:
            q.run()
    q.run()
    return fired


@pytest.mark.parametrize("seed", [0, 1, 7, 42, 1234])
def test_event_queue_replay_is_identical(seed):
    assert _random_interleaving_trace(seed) == _random_interleaving_trace(seed)


# --------------------------------------------------------------------- #
# Hash-order regressions: structures built from string vertices must be
# identical under different PYTHONHASHSEED values (regression tests for
# the hazards the repro.analysis linter flagged and this repo fixed:
# connected_components root selection, partition fill order, coarsening
# layer order).
# --------------------------------------------------------------------- #

_HASH_SNAPSHOT_CODE = """
import json
from repro.covers.clusters import max_cover_degree
from repro.covers.coarsening import coarsen_cover
from repro.graphs import WeightedGraph
from repro.synch.partition import build_partition

g = WeightedGraph()
names = ["node-%02d" % i for i in range(12)]
for a, b in zip(names, names[1:]):
    g.add_edge(a, b, 1.0)
g.add_edge(names[0], names[6], 2.0)
for a, b in (("isle-a", "isle-b"), ("isle-b", "isle-c")):
    g.add_edge(a, b, 1.0)

part = build_partition(g, k=2)
cover = [frozenset(names[i:i + 4]) for i in range(0, 12, 2)]
coarse = coarsen_cover(cover, k=2)

print(json.dumps({
    "components": [sorted(c) for c in g.connected_components()],
    "cluster_of_order": list(part.cluster_of),
    "clusters": [
        [c.index, repr(c.leader), sorted(c.members),
         list(c.children), sorted(c.neighbor_clusters)]
        for c in part.clusters
    ],
    "preferred": sorted(map(repr, part.preferred.items())),
    "coarse": [[sorted(c.vertices), list(c.kernel_members)] for c in coarse],
    "max_degree": max_cover_degree(cover),
}))
"""


def _hash_snapshot(hashseed: str) -> str:
    import os
    import subprocess
    import sys

    env = dict(os.environ, PYTHONHASHSEED=hashseed)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(Path(__file__).parent.parent / "src"),
                    env.get("PYTHONPATH")) if p)
    proc = subprocess.run([sys.executable, "-c", _HASH_SNAPSHOT_CODE],
                          capture_output=True, text=True, env=env)
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_graph_structures_identical_across_hash_seeds():
    assert _hash_snapshot("1") == _hash_snapshot("271828")
