"""Planted RS010: a handler mutates an object received in a payload."""


class GrabbyProcess:
    peer = None

    def on_start(self):
        self.send(self.peer, ("adopt", self), tag="flood")

    def on_message(self, frm, payload):
        kind = payload[0]
        if kind == "adopt":
            child = payload[1]
            child.parent = self  # cross-process write through the payload
        else:
            raise AssertionError(payload)
