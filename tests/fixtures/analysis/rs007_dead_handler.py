"""Planted RS007: a handler arm dispatches a kind no send site produces."""


class VestigialProcess:
    peer = None

    def on_start(self):
        self.send(self.peer, ("ping",), tag="flood")

    def on_message(self, frm, payload):
        kind = payload[0]
        if kind == "ping":
            self.finish(None)
        elif kind == "bye":  # dead: nothing ever sends ("bye", ...)
            self.finish(None)
        else:
            raise AssertionError(payload)
