"""Planted RS009: wall-clock read on the message path.

The site itself carries a narrow ``allow RS003`` (so RS003 stays quiet),
but the helper is reachable from ``on_message`` through the call graph —
the interprocedural hazard RS009 exists to catch.
"""

import time


class JitterProcess:
    def on_message(self, frm, payload):
        kind = payload[0]
        if kind == "ping":
            self._reply(frm)
        else:
            raise AssertionError(payload)

    def _reply(self, frm):
        stamp = time.time()  # repro: allow RS003 -- planted fixture site
        self.send(frm, ("ping", stamp), tag="flood")
