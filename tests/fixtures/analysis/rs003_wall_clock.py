"""Planted violations for RS003 only: wall-clock and entropy reads."""

import os
import time
import uuid
from time import perf_counter  # RS003: wall-clock import


def stamp():
    t = time.time()  # RS003: wall clock
    token = uuid.uuid4()  # RS003: entropy-derived
    noise = os.urandom(8)  # RS003: OS entropy
    return t, token, noise, perf_counter()
