"""Planted RS006: a kind is sent but the closed ladder never dispatches it."""


class OneWayProcess:
    peer = None

    def on_start(self):
        # "ping" has no arm below and the ladder raises on unknown kinds.
        self.send(self.peer, ("ping",), tag="flood")
        self.send(self.peer, ("pong",), tag="flood")

    def on_message(self, frm, payload):
        kind = payload[0]
        if kind == "pong":
            self.finish(None)
        else:
            raise AssertionError(payload)
