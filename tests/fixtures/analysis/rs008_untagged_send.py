"""Planted RS008: sends with no tag= and with an off-taxonomy tag."""


class UnbudgetedProcess:
    peer = None

    def on_start(self):
        self.send(self.peer, ("ping",))  # no tag at all
        self.send(self.peer, ("ping",), tag="not-a-cost-class")

    def on_message(self, frm, payload):
        kind = payload[0]
        if kind == "ping":
            self.finish(None)
        else:
            raise AssertionError(payload)
