"""Planted violations for RS001 only: hash-order set iteration."""


def hash_order_everywhere(extra: set):
    tags = {"a", "b", "c"}
    out = []
    for t in tags:  # RS001: for-loop over a set literal
        out.append(t)
    first = next(iter(tags))  # RS001: arbitrary-element selection
    listed = list(tags)  # RS001: materializes hash order
    joined = ",".join(tags)  # RS001: concatenates in hash order
    pairs = [t.upper() for t in tags]  # RS001: comprehension over a set
    for e in extra:  # RS001: annotated set parameter
        out.append(e)
    return out, first, listed, joined, pairs
