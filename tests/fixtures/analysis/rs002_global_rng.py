"""Planted violations for RS002 only: the process-global RNG stream."""

import random
from random import shuffle  # RS002: binds the global stream


def jitter(values):
    random.shuffle(values)  # RS002: module-level call
    shuffle(values)
    return random.random()  # RS002: module-level call
