"""Planted violations for RS005 only: simulator-owned state via ctx."""


class LeakyProcess:
    def on_start(self):
        self.buffer = []  # node-local attribute: clean

    def on_message(self, frm, payload):
        self.ctx.now = 0.0  # RS005: write through ctx
        self.ctx.network.paused = True  # RS005: deeper write through ctx
        self.neighbors().sort()  # RS005: mutates the framework's list
