"""Clean fixture: exercises near-miss patterns; no rule may fire."""

import random


class TidyProcess:
    def on_start(self):
        self.rng = random.Random(7)  # seeded instance, not the global stream
        self.peers = set()

    def on_message(self, frm, payload):
        self.peers.add(frm)
        for p in sorted(self.peers):  # sorted() normalizes the set order
            self.note(p)
        if len(self.peers) > 2 and any(p is None for p in self.peers):
            self.note(min(self.peers))  # order-insensitive consumers

    def note(self, p):
        self.last = p


class FreshGraph:
    def __init__(self, edges):
        self._adj = {}  # whole-attribute init is construction, not mutation
        self._version = 0
        for u, v, w in edges:
            self.add_edge(u, v, w)

    def add_edge(self, u, v, w):
        self._adj.setdefault(u, {})[v] = w
        self._adj.setdefault(v, {})[u] = w
        self._version += 1
