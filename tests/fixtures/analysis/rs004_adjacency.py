"""Planted violations for RS004 only: adjacency writes vs. _version."""


class VersionedGraph:
    """Mimics WeightedGraph's cache-invalidation contract."""

    def __init__(self):
        self._adj = {}
        self._version = 0

    def add_edge(self, u, v, w):
        # Mutates self._adj AND bumps _version: clean.
        self._adj.setdefault(u, {})[v] = w
        self._adj.setdefault(v, {})[u] = w
        self._version += 1

    def remove_edge_stale(self, u, v):
        del self._adj[u][v]  # RS004: mutation with no _version bump
        del self._adj[v][u]


def poke(graph, u, v, w):
    graph._adj[u][v] = w  # RS004: external direct adjacency write
