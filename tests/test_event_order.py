"""Regression tests for simultaneous-event ordering in the EventQueue.

The original queue had an ordering ambiguity around
``schedule_at(when == now)``: once the heap had fully drained, a
subsequent ``schedule_at`` at the current instant competed with
``schedule``-based entries only through the tie-breaking sequence number,
which an alternative implementation could easily get wrong.  These tests
pin the contract: **simultaneous events fire in scheduling order, across
every entry point and every drain boundary** — including events appended
to the batch currently being drained.
"""

import pytest

from repro.sim.events import EventQueue


def test_schedule_and_schedule_at_interleave_in_scheduling_order():
    q = EventQueue()
    fired = []
    # Interleave all four entry points at one timestamp (t=1.0).
    q.schedule(1.0, lambda: fired.append("a"))
    q.schedule_at(1.0, lambda: fired.append("b"))
    q.schedule_call(1.0, fired.append, "c")
    q.schedule_call_at(1.0, fired.append, "d")
    q.schedule(1.0, lambda: fired.append("e"))
    q.run()
    assert fired == ["a", "b", "c", "d", "e"]


def test_schedule_at_now_after_drained_heap_fires_in_order():
    q = EventQueue()
    fired = []
    q.schedule(2.0, lambda: fired.append("first"))
    q.run()
    assert q.now == 2.0 and len(q) == 0
    # The heap is empty and now == 2.0; schedule at the *current* instant
    # through both absolute entry points, interleaved with relative ones.
    q.schedule_at(2.0, lambda: fired.append("x"))
    q.schedule(0.0, lambda: fired.append("y"))
    q.schedule_call_at(2.0, fired.append, "z")
    q.schedule_call(0.0, fired.append, "w")
    q.run()
    assert fired == ["first", "x", "y", "z", "w"]


def test_callback_scheduling_at_now_joins_current_batch():
    q = EventQueue()
    fired = []

    def first():
        fired.append("first")
        # Appended mid-drain at the same instant: must fire in this drain,
        # after everything already queued at t=1.
        q.schedule_at(q.now, lambda: fired.append("late"))

    q.schedule(1.0, first)
    q.schedule(1.0, lambda: fired.append("second"))
    q.run()
    assert fired == ["first", "second", "late"]


def test_ordering_identical_between_step_and_run():
    def build():
        q = EventQueue()
        fired = []
        q.schedule(1.0, lambda: fired.append(0))
        q.schedule_at(1.0, lambda: fired.append(1))
        q.schedule(0.5, lambda: fired.append(2))
        q.schedule_call(1.0, fired.append, 3)
        q.schedule_call_at(0.5, fired.append, 4)
        return q, fired

    q1, via_run = build()
    q1.run()
    q2, via_step = build()
    while q2.step():
        pass
    assert via_run == via_step == [2, 4, 0, 1, 3]


def test_interrupted_run_resumes_in_order():
    q = EventQueue()
    fired = []
    for i in range(6):
        q.schedule_call(1.0, fired.append, i)
    reason, n = q.run(max_events=2)
    assert (reason, n) == ("max_events", 2)
    assert fired == [0, 1]
    assert len(q) == 4
    # New same-time arrivals queue *after* the not-yet-fired remainder.
    q.schedule_call_at(1.0, fired.append, 6)
    q.run()
    assert fired == [0, 1, 2, 3, 4, 5, 6]


def test_step_after_interrupted_run_keeps_order():
    q = EventQueue()
    fired = []
    for i in range(4):
        q.schedule_call(1.0, fired.append, i)
    q.run(max_events=3)
    assert fired == [0, 1, 2]
    assert q.step() is True
    assert fired == [0, 1, 2, 3]
    assert q.step() is False


def test_max_time_boundary_semantics():
    q = EventQueue()
    fired = []
    q.schedule_call(1.0, fired.append, "at")
    q.schedule_call(1.0 + 1e-9, fired.append, "past")
    reason, n = q.run(max_time=1.0)
    assert (reason, n) == ("max_time", 1)
    assert fired == ["at"]          # events exactly at the deadline fire
    assert len(q) == 1              # the later one stays queued
    assert q.peek_time() == 1.0 + 1e-9
    q.run()
    assert fired == ["at", "past"]


def test_halt_stops_after_current_event():
    q = EventQueue()
    fired = []

    def halter():
        fired.append("halter")
        q.halted = True

    q.schedule_call(1.0, fired.append, "before")
    q.schedule(1.0, halter)
    q.schedule_call(1.0, fired.append, "after")
    reason, n = q.run()
    assert (reason, n) == ("halted", 2)
    assert fired == ["before", "halter"]
    q.run()
    assert fired == ["before", "halter", "after"]


def test_negative_and_past_scheduling_rejected():
    q = EventQueue()
    q.schedule_call(1.0, lambda: None)
    q.run()
    with pytest.raises(ValueError):
        q.schedule(-0.5, lambda: None)
    with pytest.raises(ValueError):
        q.schedule_call(-0.5, lambda: None)
    with pytest.raises(ValueError):
        q.schedule_at(q.now - 0.5, lambda: None)
    with pytest.raises(ValueError):
        q.schedule_call_at(q.now - 0.5, lambda: None)


def test_len_and_peek_track_bucketed_entries():
    q = EventQueue()
    assert len(q) == 0 and not q and q.peek_time() is None
    q.schedule_call(1.0, lambda: None)
    q.schedule_call(1.0, lambda: None)  # same bucket
    q.schedule_call(2.0, lambda: None)
    assert len(q) == 3 and bool(q)
    assert q.peek_time() == 1.0
    q.run(max_events=1)
    assert len(q) == 2
    q.run()
    assert len(q) == 0 and q.peek_time() is None
