"""Tests for the hybrid racers (Sections 7.2, 8.2, 9.3)."""

import math

import pytest

from repro.graphs import (
    lower_bound_graph,
    mst_weight,
    network_params,
    dijkstra,
    random_connected_graph,
    tree_distances,
)
from repro.protocols.hybrid import (
    race,
    run_con_hybrid,
    run_mst_hybrid,
    run_spt_hybrid,
)


# --------------------------------------------------------------------- #
# The race combinator itself
# --------------------------------------------------------------------- #


def test_race_picks_cheaper_algorithm():
    # Algorithm A completes at cost 100, B at cost 10.
    def make(c_total):
        def attempt(budget):
            spent = min(budget, c_total)
            return spent, spent, ("done" if budget >= c_total else None)

        return attempt

    outcome = race({"A": make(100.0), "B": make(10.0)}, initial_budget=1.0)
    assert outcome.winner == "B"
    assert outcome.output == "done"
    # Dovetailing overhead: total <= ~4x each side's final budget.
    assert outcome.total_comm_cost <= 8 * 10.0 + 8 * 10.0


def test_race_rejects_bad_budget():
    with pytest.raises(ValueError):
        race({"A": lambda b: (0, 0, None)}, initial_budget=0.0)


def test_race_round_limit():
    with pytest.raises(RuntimeError):
        race({"A": lambda b: (1.0, 1.0, None)}, initial_budget=1.0,
             max_rounds=3)


# --------------------------------------------------------------------- #
# CON_hybrid (Section 7.2): O(min{E, nV}) with the G_n lower-bound family
# --------------------------------------------------------------------- #


def test_con_hybrid_builds_spanning_tree():
    g = random_connected_graph(20, 30, seed=1)
    outcome = run_con_hybrid(g, 0)
    tree = outcome.output
    assert tree.is_tree()
    assert tree.num_vertices == g.num_vertices


def test_con_hybrid_on_lower_bound_family_picks_centr():
    """On G_n, script-E ~ n^4 (bypass edges) dwarfs n*V ~ n^2, so the
    hybrid must finish via MST_centr at cost O(nV) << E."""
    n = 16
    g = lower_bound_graph(n)
    p = network_params(g)
    outcome = run_con_hybrid(g, 1)
    assert outcome.winner == "MST_centr"
    assert outcome.total_comm_cost <= 16 * p.n * p.V
    assert outcome.total_comm_cost < p.E  # far below the flooding/DFS cost


def test_con_hybrid_dense_cheap_graph_picks_dfs():
    """When E << nV (sparse, uniform weights), DFS wins."""
    g = random_connected_graph(30, 10, seed=2, max_weight=1)
    p = network_params(g)
    assert p.E < p.n * p.V / 4
    outcome = run_con_hybrid(g, 0)
    assert outcome.winner == "DFS"


# --------------------------------------------------------------------- #
# MST_hybrid (Section 8.2)
# --------------------------------------------------------------------- #


def test_mst_hybrid_computes_mst():
    g = random_connected_graph(18, 30, seed=3)
    outcome = run_mst_hybrid(g, 0)
    assert outcome.output.total_weight() == pytest.approx(mst_weight(g))


def test_mst_hybrid_bound_on_lower_bound_family():
    n = 14
    g = lower_bound_graph(n)
    p = network_params(g)
    outcome = run_mst_hybrid(g, 1)
    assert outcome.output.total_weight() == pytest.approx(p.V)
    bound = min(p.E + p.V * math.log2(p.n), p.n * p.V)
    assert outcome.total_comm_cost <= 16 * bound


def test_mst_hybrid_ghs_wins_when_light():
    g = random_connected_graph(30, 120, seed=4, max_weight=3)
    outcome = run_mst_hybrid(g, 0)
    assert outcome.winner == "MST_ghs"


# --------------------------------------------------------------------- #
# SPT_hybrid (Section 9.3)
# --------------------------------------------------------------------- #


def test_spt_hybrid_computes_spt():
    g = random_connected_graph(14, 20, seed=5, max_weight=6)
    outcome = run_spt_hybrid(g, 0)
    tree = outcome.output
    dist, _ = dijkstra(g, 0)
    assert tree_distances(tree, 0) == pytest.approx(dist)


def test_spt_hybrid_total_cost_near_min():
    from repro.protocols.spt_recur import run_spt_recur
    from repro.protocols.spt_synch import run_spt_synch

    g = random_connected_graph(12, 18, seed=6, max_weight=5)
    r1, _ = run_spt_synch(g, 0)
    r2, _ = run_spt_recur(g, 0)
    best = min(r1.comm_cost, r2.comm_cost)
    outcome = run_spt_hybrid(g, 0)
    assert outcome.total_comm_cost <= 8 * best
