"""The chaos fuzzer: determinism, novelty, minimization, CLI."""

import json
import random
from pathlib import Path

import pytest

from repro.faults import CrashWindow, FaultPlan
from repro.graphs import random_connected_graph
from repro.replay.fuzz import (
    FuzzCell,
    ddmin,
    evaluate_cell,
    fuzz,
    main,
    minimize_plan,
    mutate_plan,
    outcome_signature,
    plan_atoms,
    plan_from_atoms,
    plan_key,
    verify_entry,
    write_corpus,
)

# Small, fast campaign settings shared by the tests.
KW = dict(n=8, extra_edges=6, graph_seed=3)


def _cell(plan, protocol="broadcast", **overrides):
    kw = {**KW, **overrides}
    return FuzzCell(protocol=protocol, plan_json=plan_key(plan), **kw)


# --------------------------------------------------------------------- #
# ddmin (pure)
# --------------------------------------------------------------------- #

def test_ddmin_finds_minimal_core():
    atoms = list(range(8))
    calls = []

    def test_fn(subset):
        calls.append(tuple(subset))
        return 3 in subset and 5 in subset

    assert sorted(ddmin(atoms, test_fn)) == [3, 5]


def test_ddmin_single_atom():
    assert ddmin([1, 2, 3, 4], lambda s: 2 in s) == [2]


def test_ddmin_requires_failing_input():
    with pytest.raises(ValueError, match="test\\(atoms\\) to hold"):
        ddmin([1, 2], lambda s: False)


def test_ddmin_never_grows():
    atoms = list(range(16))
    result = ddmin(atoms, lambda s: len(s) >= 5)
    assert len(result) == 5


# --------------------------------------------------------------------- #
# Atoms
# --------------------------------------------------------------------- #

def test_plan_atoms_round_trip():
    plan = FaultPlan(drop=0.2, corrupt=0.1, seed=7,
                     edges=[(0, 1), (2, 3)],
                     crashes=(CrashWindow(1, 2.0, 5.0),))
    atoms = plan_atoms(plan)
    assert len(atoms) == 5  # 2 rates + 1 crash + 2 edges
    rebuilt = plan_from_atoms(plan, atoms)
    assert rebuilt.to_dict() == plan.to_dict()


def test_plan_from_atoms_subset_weakens():
    plan = FaultPlan(drop=0.2, corrupt=0.1, seed=7, edges=[(0, 1)],
                     crashes=(CrashWindow(1, 2.0, 5.0),))
    atoms = [a for a in plan_atoms(plan) if a[0] == "rate" and a[1] == "drop"]
    reduced = plan_from_atoms(plan, atoms)
    assert reduced.drop == 0.2
    assert reduced.corrupt == 0.0
    assert reduced.crashes == ()
    # Base had an edge restriction; dropping its atoms must shrink the
    # faultable set to empty, never widen it back to "all edges".
    assert reduced._edge_set == frozenset()


def test_empty_atoms_is_benign_plan():
    plan = FaultPlan(drop=0.3, seed=9)
    reduced = plan_from_atoms(plan, [])
    assert plan_atoms(reduced) == []
    assert reduced.seed == 9


# --------------------------------------------------------------------- #
# Mutation
# --------------------------------------------------------------------- #

def test_mutate_plan_always_valid_and_deterministic():
    g = random_connected_graph(8, 6, seed=3)
    vertices = sorted(g.vertices, key=repr)
    edges = sorted(((u, v) for u, v, _w in g.edges()),
                   key=lambda e: (repr(e[0]), repr(e[1])))

    def campaign(seed):
        rng = random.Random(seed)
        plan = FaultPlan()
        keys = []
        for _ in range(60):
            plan = mutate_plan(plan, rng, vertices, edges)
            keys.append(plan_key(plan))  # to_dict validates + canonicalizes
        return keys

    assert campaign(11) == campaign(11)
    assert campaign(11) != campaign(12)


# --------------------------------------------------------------------- #
# Evaluation, signatures, minimization
# --------------------------------------------------------------------- #

def test_evaluate_cell_ok_plan():
    row = evaluate_cell(_cell(FaultPlan()))
    assert row["status"] == "ok"
    assert not row["crashed"]
    assert "send" in row["kinds"]


def test_permanent_crash_is_a_detectable_failure():
    g = random_connected_graph(KW["n"], KW["extra_edges"],
                               seed=KW["graph_seed"])
    victim = g.vertices[-1]  # not the root the case builds from vertices[0]
    plan = FaultPlan(crashes=(CrashWindow(victim, 1.0, None),))
    row = evaluate_cell(_cell(plan))
    assert row["status"] != "ok"
    assert row["crashed"]
    sig = outcome_signature(row)
    assert sig != outcome_signature(evaluate_cell(_cell(FaultPlan())))


def test_minimize_plan_shrinks_and_still_fails():
    g = random_connected_graph(KW["n"], KW["extra_edges"],
                               seed=KW["graph_seed"])
    victim = g.vertices[-1]
    noisy = FaultPlan(drop=0.05, duplicate=0.05, reorder=0.1,
                      crashes=(CrashWindow(victim, 1.0, None),), seed=3)
    cell = _cell(noisy)
    assert evaluate_cell(cell)["status"] != "ok"
    minimized, probes = minimize_plan(cell)
    assert probes > 0
    assert len(plan_atoms(minimized)) <= len(plan_atoms(noisy))
    re_run = evaluate_cell(_cell(minimized))
    assert re_run["status"] != "ok"
    # The permanent crash is the actual culprit; rates should be gone.
    assert len(plan_atoms(minimized)) == 1


def test_signature_buckets_retries_logarithmically():
    base = {"status": "ok", "crashed": False, "kinds": [], "spans": [],
            "violations": []}
    sig_lo = outcome_signature({**base, "retry_count": 2})
    sig_lo2 = outcome_signature({**base, "retry_count": 3})
    sig_hi = outcome_signature({**base, "retry_count": 40})
    assert sig_lo == sig_lo2
    assert sig_lo != sig_hi


# --------------------------------------------------------------------- #
# Campaigns
# --------------------------------------------------------------------- #

def test_fuzz_same_seed_same_corpus(tmp_path):
    kwargs = dict(budget=10, seed=5, minimize=False, **KW)
    a = fuzz(["broadcast"], **kwargs)
    b = fuzz(["broadcast"], **kwargs)
    pa = write_corpus(a, str(tmp_path / "a.jsonl"))
    pb = write_corpus(b, str(tmp_path / "b.jsonl"))
    assert Path(pa).read_bytes() == Path(pb).read_bytes()
    assert a.evaluations == 10


def test_fuzz_signatures_are_unique():
    result = fuzz(["broadcast"], budget=10, seed=5, minimize=False, **KW)
    assert result.entries
    sigs = [json.dumps(e["signature"]) for e in result.entries]
    assert len(sigs) == len(set(sigs))


def test_fuzz_verify_entry_round_trip():
    # Drive until the campaign finds a failing plan, then re-verify it:
    # minimized still fails, no larger, replays byte-identically.
    result = fuzz(["broadcast"], budget=24, seed=3, **KW)
    failing = result.failing
    assert failing, "campaign found no failing plan (seed drift?)"
    entry = failing[0]
    assert entry["minimized_atoms"] <= entry["parent_atoms"]
    assert verify_entry(entry) == []


def test_fuzz_cli_smoke(tmp_path, capsys):
    out = tmp_path / "corpus.jsonl"
    status = main([
        "--protocols", "broadcast", "--budget", "8", "--seed", "5",
        "--n", str(KW["n"]), "--extra-edges", str(KW["extra_edges"]),
        "--graph-seed", str(KW["graph_seed"]),
        "--no-minimize", "--out", str(out), "--min-novel", "1",
    ])
    assert status == 0
    text = out.read_text()
    header = json.loads(text.splitlines()[0])
    assert header["kind"] == "fuzz-corpus"
    assert header["evaluations"] == 8
    captured = capsys.readouterr()
    assert "novel signatures" in captured.out


def test_fuzz_cli_min_novel_failure(tmp_path):
    status = main([
        "--protocols", "broadcast", "--budget", "2", "--seed", "5",
        "--n", str(KW["n"]), "--extra-edges", str(KW["extra_edges"]),
        "--no-minimize", "--min-novel", "1000",
    ])
    assert status == 1
