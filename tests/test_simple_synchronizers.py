"""Tests for network synchronizers alpha_w and beta_w (gamma_w's baselines)."""

import pytest

from repro.graphs import (
    diameter,
    dijkstra,
    network_params,
    path_graph,
    random_connected_graph,
    ring_graph,
)
from repro.protocols.spt_synch import SyncBellmanFord
from repro.sim import UniformDelay
from repro.synch import run_alpha_w, run_beta_w, run_gamma_w


def _bf_factory(graph, source=0):
    stop = int(diameter(graph)) + 1
    return lambda v: SyncBellmanFord(v == source, stop), stop


def _max_pulse(graph, stop):
    w_max = int(max(w for _, _, w in graph.edges()))
    return 4 * (stop + 1) + 4 * w_max + 8


def _verify(graph, res, source=0):
    dist, _ = dijkstra(graph, source)
    for v in graph.vertices:
        d, _p = res.result_of(v)
        assert d == pytest.approx(dist[v])


@pytest.mark.parametrize("maker,seed", [
    (lambda: path_graph(8, weight=3.0), 0),
    (lambda: ring_graph(10, weight=2.0), 1),
    (lambda: random_connected_graph(15, 20, seed=8, max_weight=6), 2),
])
def test_alpha_w_reproduces_synchronous_output(maker, seed):
    g = maker()
    factory, stop = _bf_factory(g)
    res = run_alpha_w(g, factory, max_pulse=_max_pulse(g, stop), seed=seed)
    _verify(g, res)


@pytest.mark.parametrize("maker,seed", [
    (lambda: path_graph(8, weight=3.0), 0),
    (lambda: ring_graph(10, weight=2.0), 1),
    (lambda: random_connected_graph(15, 20, seed=8, max_weight=6), 2),
])
def test_beta_w_reproduces_synchronous_output(maker, seed):
    g = maker()
    factory, stop = _bf_factory(g)
    res = run_beta_w(g, factory, max_pulse=_max_pulse(g, stop), seed=seed)
    _verify(g, res)


def test_alpha_w_under_random_delays():
    g = random_connected_graph(12, 18, seed=9, max_weight=5)
    factory, stop = _bf_factory(g)
    res = run_alpha_w(g, factory, max_pulse=_max_pulse(g, stop),
                      delay=UniformDelay(), seed=3)
    _verify(g, res)


def test_beta_w_under_random_delays():
    g = random_connected_graph(12, 18, seed=9, max_weight=5)
    factory, stop = _bf_factory(g)
    res = run_beta_w(g, factory, max_pulse=_max_pulse(g, stop),
                     delay=UniformDelay(), seed=3)
    _verify(g, res)


def test_beta_w_explicit_tree_requires_root():
    from repro.graphs import shortest_path_tree

    g = ring_graph(6, weight=2.0)
    factory, stop = _bf_factory(g)
    t = shortest_path_tree(g, 0)
    with pytest.raises(ValueError):
        run_beta_w(g, factory, max_pulse=_max_pulse(g, stop), tree=t)


def test_alpha_w_cost_per_pulse_theta_E():
    g = random_connected_graph(15, 25, seed=10, max_weight=4)
    p = network_params(g)
    factory, stop = _bf_factory(g)
    res = run_alpha_w(g, factory, max_pulse=_max_pulse(g, stop))
    # Per pulse: one SAFE per directed edge (cost <= 2 E-hat <= 4 E), plus
    # acks of the payload amortized in.
    assert res.control_cost / res.pulses <= 4 * p.E + 1e-9
    assert res.control_cost / res.pulses >= 0.5 * p.E


def test_beta_w_cheaper_control_than_alpha_w():
    """beta_w's per-pulse control cost is w(T) ~ V vs alpha_w's ~ E."""
    g = random_connected_graph(20, 60, seed=11, max_weight=4)
    factory, stop = _bf_factory(g)
    mp = _max_pulse(g, stop)
    a = run_alpha_w(g, factory, max_pulse=mp)
    b = run_beta_w(g, factory, max_pulse=mp)
    _verify(g, a)
    _verify(g, b)
    assert b.control_cost / b.pulses < a.control_cost / a.pulses


def test_gamma_w_beats_alpha_w_time_on_heavy_edges():
    """With one huge edge, alpha_w's pulses gate on W while gamma_w's
    level stratification touches the heavy edge only every W pulses."""
    from repro.graphs import heavy_edge_clock_graph

    g = heavy_edge_clock_graph(10, heavy=64.0)
    factory, stop = _bf_factory(g)
    mp = _max_pulse(g, stop)
    a = run_alpha_w(g, factory, max_pulse=mp)
    c = run_gamma_w(g, factory, k=2, max_pulse=mp)
    _verify(g, a)
    _verify(g, c)
    assert c.time_per_pulse < a.time_per_pulse
