"""Simulator invariants: FIFO channels, the time deadline, cost conservation.

Three properties every run must satisfy regardless of protocol, delay
model, or fault plan:

* **Per-edge FIFO** — messages on one directed channel are delivered in
  send order and never overtake (the ``_channel_clear`` clamp), even
  under randomized per-message delays;
* **Deadline** — nothing is delivered after ``max_time``; events exactly
  at the deadline still fire, later ones stay queued;
* **Ledger conservation** — the sum of per-edge charges (observed through
  the ``trace`` hook at transmit time) equals ``Metrics.comm_cost``,
  which in turn equals the sum over tags of ``cost_by_tag`` — including
  the reliable transport's ``rel-ack``/``rel-retry`` components under
  message loss.
"""

import random

from repro.faults import FaultPlan
from repro.faults.transport import reliable_factory
from repro.graphs import WeightedGraph, random_connected_graph
from repro.protocols.broadcast import FloodProcess
from repro.sim.delays import UniformDelay
from repro.sim.network import Network
from repro.sim.process import Process


class BurstSender(Process):
    """Sends a numbered burst of messages to every neighbor at start."""

    def __init__(self, n_msgs: int):
        self.n_msgs = n_msgs

    def on_start(self):
        for seq in range(self.n_msgs):
            for v in self.neighbors():
                self.send(v, (self.node_id, seq))
        self.finish()


class Recorder(Process):
    """Records every arrival as (sender, seq, time)."""

    def __init__(self, log: list):
        self.log = log

    def on_message(self, frm, payload):
        self.log.append((frm, payload[1], self.now))

    def on_start(self):
        self.finish()


def test_per_edge_fifo_order_preserved_under_random_delays():
    g = random_connected_graph(12, 16, seed=9)
    sender = g.vertices[0]
    logs = {v: [] for v in g.vertices}

    def factory(v):
        return BurstSender(8) if v == sender else Recorder(logs[v])

    # Randomized sub-maximal delays are exactly the regime where a later
    # message could overtake an earlier one absent the FIFO clamp.
    net = Network(g, factory, delay=UniformDelay(0.1, 1.0), seed=5)
    net.run()

    for v, log in logs.items():
        arrivals = [(seq, t) for frm, seq, t in log if frm == sender]
        if not arrivals:
            continue
        seqs = [seq for seq, _ in arrivals]
        times = [t for _, t in arrivals]
        assert seqs == sorted(seqs), f"channel ({sender}->{v}) reordered: {seqs}"
        assert all(a <= b for a, b in zip(times, times[1:])), (
            f"channel ({sender}->{v}) delivery times not monotone: {times}"
        )


def test_fifo_holds_on_every_directed_channel_all_to_all():
    g = random_connected_graph(8, 10, seed=3)
    logs = {v: [] for v in g.vertices}

    class SendAndRecord(BurstSender):
        def __init__(self, v):
            super().__init__(6)
            self.v = v

        def on_message(self, frm, payload):
            logs[self.v].append((frm, payload[1], self.now))

    net = Network(g, lambda v: SendAndRecord(v), delay=UniformDelay(0.0, 1.0),
                  seed=17)
    net.run()
    for v, log in logs.items():
        per_sender = {}
        for frm, seq, t in log:
            per_sender.setdefault(frm, []).append(seq)
        for frm, seqs in per_sender.items():
            assert seqs == sorted(seqs), (
                f"channel ({frm}->{v}) reordered: {seqs}"
            )


def test_no_delivery_after_max_time():
    g = random_connected_graph(16, 24, seed=7)
    root = g.vertices[0]
    deadline = 3.0
    net = Network(g, lambda v: FloodProcess(v == root, "x"))
    result = net.run(max_time=deadline)
    assert result.status == "max_time"
    assert result.metrics.completion_time <= deadline
    # The over-deadline events were not consumed, merely left pending.
    assert len(net.queue) > 0
    assert net.queue.peek_time() > deadline


def test_events_exactly_at_deadline_still_fire():
    g = WeightedGraph([(0, 1, 2.0), (1, 2, 2.0)])
    net = Network(g, lambda v: FloodProcess(v == 0, "x"))
    # Flood over uniform weight-2 edges delivers at t=2 and t=4.
    result = net.run(max_time=4.0)
    assert result.metrics.completion_time == 4.0
    assert result.status in ("quiescent", "max_time")
    assert all(p.payload == "x" for p in net.processes.values())


def _ledger(net_factory):
    """Run a network while accumulating trace charges per directed edge."""
    per_edge = {}

    def trace(t, frm, to, tag, cost):
        per_edge[(frm, to)] = per_edge.get((frm, to), 0.0) + cost

    net = net_factory(trace)
    result = net.run()
    return per_edge, result.metrics


def test_cost_ledger_conservation_fault_free():
    g = random_connected_graph(10, 14, seed=2)
    root = g.vertices[0]
    per_edge, metrics = _ledger(
        lambda trace: Network(g, lambda v: FloodProcess(v == root, "x"),
                              trace=trace)
    )
    total = sum(per_edge.values())
    assert abs(total - metrics.comm_cost) < 1e-9
    assert abs(sum(metrics.cost_by_tag.values()) - metrics.comm_cost) < 1e-9
    # Every charge is per-transmission w(e) * size with size=1 here.
    for (u, v), cost in per_edge.items():
        w = g.weight(u, v)
        assert cost / w == round(cost / w), "charge not a multiple of w(e)"


def test_cost_ledger_conservation_with_reliable_transport_under_loss():
    g = random_connected_graph(10, 14, seed=2)
    root = g.vertices[0]
    plan = FaultPlan.message_loss(0.2, seed=11)
    factory = reliable_factory(lambda v: FloodProcess(v == root, "x"))
    per_edge, metrics = _ledger(
        lambda trace: Network(g, factory, faults=plan, trace=trace)
    )
    # The lossy run actually exercised the retransmission machinery.
    assert metrics.cost_by_tag["rel-ack"] > 0
    assert metrics.cost_by_tag["rel-retry"] > 0
    # Conservation: per-edge charges == comm_cost == sum of tag buckets
    # (payload + rel-ack + rel-retry), to float tolerance.
    total = sum(per_edge.values())
    assert abs(total - metrics.comm_cost) < 1e-9
    assert abs(sum(metrics.cost_by_tag.values()) - metrics.comm_cost) < 1e-9
    # Dropped messages were still charged: the adversary recorded drops,
    # and each drop cost its w(e) at transmit time (already in the ledger).
    assert metrics.fault_counts["drop"] > 0


def test_message_counts_by_tag_sum_to_total():
    g = random_connected_graph(9, 9, seed=6)
    root = g.vertices[0]
    plan = FaultPlan.message_loss(0.1, seed=4)
    factory = reliable_factory(lambda v: FloodProcess(v == root, "x"))
    net = Network(g, factory, faults=plan)
    result = net.run()
    m = result.metrics
    assert sum(m.count_by_tag.values()) == m.message_count


def test_ledger_conservation_under_random_delays_and_seeds():
    rng = random.Random(0)
    for _ in range(3):
        seed = rng.randrange(1 << 20)
        g = random_connected_graph(8, 8, seed=seed % 100)
        root = g.vertices[0]
        per_edge, metrics = _ledger(
            lambda trace: Network(g, lambda v: FloodProcess(v == root, "x"),
                                  delay=UniformDelay(0.0, 1.0), seed=seed,
                                  trace=trace)
        )
        assert abs(sum(per_edge.values()) - metrics.comm_cost) < 1e-9
        assert abs(sum(metrics.cost_by_tag.values()) - metrics.comm_cost) < 1e-9
