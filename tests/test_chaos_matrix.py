"""Acceptance tests for the chaos harness (ISSUE 1 criteria).

The matrix runs {broadcast, convergecast, DFS, GHS MST, SLT global
function} at seeded drop rates {0, 0.05, 0.2}:

* with the reliable transport every run completes with the fault-free
  answer;
* without it, a faulted run either still succeeds or fails *detectably*
  (stall / timeout / abort) — never a silent wrong answer, never a hang;
* retransmission overhead is accounted in cost units (each retry on ``e``
  costs another ``w(e)``) and stays below 3x the fault-free communication
  cost at 20% drop;
* the whole matrix is deterministic: same plans + seeds, same numbers.
"""

import pytest

from repro.experiments.chaos import DROP_RATES, chaos_matrix, make_cases

PROTOCOLS = ("broadcast", "convergecast", "dfs", "mst_ghs", "mst_fast",
             "global_fn(slt)")


@pytest.fixture(scope="module")
def matrix():
    return chaos_matrix(make_cases())


def test_matrix_covers_all_protocols_and_rates(matrix):
    combos = {(e["protocol"], e["drop"], e["reliable"]) for e in matrix}
    for proto in PROTOCOLS:
        for rate in DROP_RATES:
            assert (proto, rate, True) in combos
            if rate > 0:
                assert (proto, rate, False) in combos


def test_reliable_runs_complete_with_fault_free_answer(matrix):
    for entry in matrix:
        if entry["reliable"]:
            outcome = entry["outcome"]
            assert outcome.status == "ok", (
                f"{entry['protocol']} @ drop={entry['drop']} with transport: "
                f"{outcome.status} ({outcome.error})"
            )


def test_raw_runs_never_silently_wrong(matrix):
    saw_detectable_failure = False
    for entry in matrix:
        if not entry["reliable"]:
            outcome = entry["outcome"]
            assert not outcome.silent_failure, (
                f"{entry['protocol']} @ drop={entry['drop']} raw: silent "
                f"wrong answer"
            )
            assert outcome.status == "ok" or outcome.detectable_failure
            saw_detectable_failure |= outcome.detectable_failure
    # The sweep actually exercises the failure path: at 20% drop at least
    # one raw protocol must have failed (detectably), else the adversary
    # is a no-op and the matrix proves nothing.
    assert saw_detectable_failure


def test_retry_overhead_below_3x_fault_free_comm(matrix):
    checked = 0
    for entry in matrix:
        if entry["reliable"] and entry["drop"] == 0.2:
            assert entry["overhead_ratio"] < 3.0, (
                f"{entry['protocol']}: retry cost "
                f"{entry['outcome'].retry_cost} >= 3x fault-free "
                f"{entry['ff_cost']}"
            )
            checked += 1
    assert checked == len(PROTOCOLS)


def test_fault_free_reliable_runs_have_no_retries(matrix):
    for entry in matrix:
        if entry["reliable"] and entry["drop"] == 0.0:
            assert entry["outcome"].retry_count == 0
            assert entry["outcome"].ack_cost > 0


def test_lossy_reliable_runs_actually_retransmit(matrix):
    for entry in matrix:
        if entry["reliable"] and entry["drop"] == 0.2:
            assert entry["outcome"].retry_count > 0, (
                f"{entry['protocol']}: 20% drop but zero retries — the "
                f"fault plan is not reaching the wire"
            )


def test_matrix_is_deterministic():
    def summarize(rows):
        return [
            (
                e["protocol"], e["drop"], e["reliable"],
                e["outcome"].status,
                e["outcome"].retry_count,
                e["outcome"].retry_cost,
                e["outcome"].ack_cost,
                e["outcome"].result.comm_cost if e["outcome"].result
                else None,
                e["outcome"].result.time if e["outcome"].result else None,
            )
            for e in rows
        ]

    cases = make_cases(n=10, extra_edges=12, graph_seed=4)
    first = summarize(chaos_matrix(cases, drop_rates=(0.0, 0.2)))
    cases = make_cases(n=10, extra_edges=12, graph_seed=4)
    second = summarize(chaos_matrix(cases, drop_rates=(0.0, 0.2)))
    assert first == second


def test_chaos_experiment_registered():
    from repro.experiments.base import all_experiments

    assert "chaos" in all_experiments()
