"""Tests for Section 4: partitions, normalization, synchronizer gamma_w."""

import math

import pytest

from repro.graphs import (
    WeightedGraph,
    diameter,
    dijkstra,
    grid_graph,
    network_params,
    path_graph,
    random_connected_graph,
    ring_graph,
    tree_distances,
)
from repro.protocols.spt_synch import (
    SyncBellmanFord,
    run_spt_synch,
    run_spt_synchronous_reference,
)
from repro.sim import SynchronousRunner, UniformDelay
from repro.synch import (
    GammaWConfig,
    build_partition,
    next_multiple,
    normalize_graph,
    power,
    run_gamma_w,
    run_synchronous_baseline,
)


# --------------------------------------------------------------------- #
# Partition (synchronizer gamma preprocessing)
# --------------------------------------------------------------------- #


def test_partition_covers_all_vertices_disjointly():
    g = random_connected_graph(40, 60, seed=1)
    part = build_partition(g, k=3)
    seen = set()
    for c in part.clusters:
        assert not (seen & set(c.members))
        seen |= set(c.members)
    assert seen == set(g.vertices)


def test_partition_depth_bound():
    g = grid_graph(8, 8)
    for k in (2, 3, 5):
        part = build_partition(g, k=k)
        n = g.num_vertices
        assert part.max_depth_hops <= math.log(n) / math.log(k) + 1


def test_partition_preferred_edge_bound():
    g = random_connected_graph(50, 150, seed=2)
    for k in (2, 4):
        part = build_partition(g, k=k)
        assert part.num_preferred <= (k - 1) * g.num_vertices


def test_partition_preferred_edges_consistent():
    g = random_connected_graph(25, 40, seed=3)
    part = build_partition(g, k=2)
    for (i, j), (u, v) in part.preferred.items():
        assert part.cluster_of[u] == i
        assert part.cluster_of[v] == j
        assert g.has_edge(u, v)
        assert j in part.clusters[i].neighbor_clusters
        assert i in part.clusters[j].neighbor_clusters


def test_partition_cluster_trees_valid():
    g = random_connected_graph(30, 45, seed=4)
    part = build_partition(g, k=2)
    for c in part.clusters:
        assert c.parent[c.leader] is None
        for v in c.members:
            if v != c.leader:
                assert c.parent[v] in c.members
                assert v in c.children[c.parent[v]]


def test_partition_rejects_k1():
    with pytest.raises(ValueError):
        build_partition(ring_graph(5), k=1)


def test_partition_handles_disconnected():
    g = WeightedGraph([(0, 1, 1.0), (2, 3, 1.0)], vertices=[4])
    part = build_partition(g, k=2)
    union = set().union(*(c.members for c in part.clusters))
    assert union == {0, 1, 2, 3, 4}


# --------------------------------------------------------------------- #
# Normalization (Lemma 4.5 machinery)
# --------------------------------------------------------------------- #


def test_power():
    assert power(1) == 1
    assert power(2) == 2
    assert power(3) == 4
    assert power(4) == 4
    assert power(5) == 8
    with pytest.raises(ValueError):
        power(0.5)


def test_next_multiple():
    assert next_multiple(0, 4) == 0
    assert next_multiple(1, 4) == 4
    assert next_multiple(4, 4) == 4
    assert next_multiple(9, 8) == 16


def test_normalize_graph_weights():
    g = WeightedGraph([(0, 1, 3.0), (1, 2, 5.0), (2, 0, 4.0)])
    ng = normalize_graph(g)
    assert ng.weight(0, 1) == 4.0
    assert ng.weight(1, 2) == 8.0
    assert ng.weight(2, 0) == 4.0
    # w <= power(w) < 2w
    for u, v, w in g.edges():
        assert w <= ng.weight(u, v) < 2 * w


# --------------------------------------------------------------------- #
# Synchronous runner + Bellman-Ford reference
# --------------------------------------------------------------------- #


def test_sync_runner_rejects_fractional_weights():
    g = WeightedGraph([(0, 1, 1.5)])
    with pytest.raises(ValueError):
        SynchronousRunner(g, lambda v: SyncBellmanFord(v == 0, 5))


def test_sync_bellman_ford_computes_distances():
    g = random_connected_graph(25, 40, seed=5)
    result, tree = run_spt_synchronous_reference(g, 0)
    dist, _ = dijkstra(g, 0)
    for v in g.vertices:
        d, _parent = result.result_of(v)
        assert d == pytest.approx(dist[v])
    assert tree.is_tree()


def test_sync_bellman_ford_message_cost_linear():
    g = random_connected_graph(20, 40, seed=6)
    p = network_params(g)
    result, _ = run_spt_synchronous_reference(g, 0)
    # In the weighted synchronous network estimates propagate along
    # shortest paths, so each edge carries O(1) payload messages.
    assert result.comm_cost <= 3 * p.E


def test_in_synch_wrapper_on_sync_runner():
    """Lemma 4.5 checked mechanically: the wrapper runs on the normalized
    graph, passes the in-synch assertion, and reproduces the output with a
    <= 4x time and <= 2x (payload) communication blow-up."""
    from repro.synch.normalize import InSynchWrapper

    g = random_connected_graph(15, 20, seed=7)
    base, _ = run_spt_synchronous_reference(g, 0)

    ng = normalize_graph(g)
    stop = int(diameter(g)) + 1

    def factory(v):
        return InSynchWrapper(
            SyncBellmanFord(v == 0, stop), g.neighbor_weights(v)
        )

    runner = SynchronousRunner(ng, factory, require_in_synch=True)
    wrapped = runner.run(max_pulses=8 * (stop + 2) + 64)
    dist, _ = dijkstra(g, 0)
    for v in g.vertices:
        d, _p = wrapped.result_of(v)
        assert d == pytest.approx(dist[v])
    assert wrapped.message_count == base.message_count
    assert wrapped.comm_cost <= 2 * base.comm_cost
    assert wrapped.pulses <= 4 * base.pulses + 8


# --------------------------------------------------------------------- #
# gamma_w end to end
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("maker,seed", [
    (lambda: path_graph(8, weight=3.0), 0),
    (lambda: ring_graph(10, weight=2.0), 1),
    (lambda: random_connected_graph(15, 20, seed=8, max_weight=6), 2),
    (lambda: random_connected_graph(20, 35, seed=9, max_weight=12), 3),
])
def test_gamma_w_reproduces_synchronous_output(maker, seed):
    g = maker()
    res, tree = run_spt_synch(g, 0, k=2, seed=seed)
    dist, _ = dijkstra(g, 0)
    for v in g.vertices:
        d, _p = res.result_of(v)
        assert d == pytest.approx(dist[v])
    depths = tree_distances(tree, 0)
    assert depths == pytest.approx(dist)


def test_gamma_w_with_random_delays():
    g = random_connected_graph(12, 18, seed=10, max_weight=8)
    res, _ = run_spt_synch(g, 0, k=2, delay=UniformDelay(), seed=5)
    dist, _ = dijkstra(g, 0)
    for v in g.vertices:
        d, _p = res.result_of(v)
        assert d == pytest.approx(dist[v])


def test_gamma_w_overhead_accounting():
    g = random_connected_graph(16, 25, seed=11, max_weight=8)
    res, _ = run_spt_synch(g, 0, k=2)
    assert res.pulses >= 1
    assert res.overhead_cost == pytest.approx(res.ack_cost + res.gamma_cost)
    assert res.comm_cost == pytest.approx(
        res.proto_cost + res.overhead_cost
    )
    # Payload cost matches the wrapped protocol's synchronous cost on the
    # normalized graph (<= 2x the original).
    base, _ = run_spt_synchronous_reference(g, 0)
    assert res.proto_cost <= 2 * base.comm_cost + 1e-9


def test_gamma_w_config_levels():
    g = WeightedGraph([(0, 1, 1.0), (1, 2, 2.0), (2, 3, 4.0), (3, 0, 4.0)])
    cfg = GammaWConfig(g, k=2)
    assert sorted(cfg.levels) == [0, 1, 2]
    assert set(cfg.participants[0]) == {0, 1}
    assert set(cfg.participants[2]) == {2, 3, 0}
    assert cfg.levels_of(0) == [0, 2]


def test_gamma_w_stall_detection():
    """An undersized max_pulse must raise, not hang."""
    g = path_graph(6, weight=4.0)
    with pytest.raises(RuntimeError):
        run_gamma_w(
            g,
            lambda v: SyncBellmanFord(v == 0, int(diameter(g)) + 1),
            k=2,
            max_pulse=2,
        )


def test_run_synchronous_baseline_helper():
    g = path_graph(5, weight=2.0)
    res = run_synchronous_baseline(
        g, lambda v: SyncBellmanFord(v == 0, int(diameter(g)) + 1)
    )
    d, _ = res.result_of(4)
    assert d == pytest.approx(8.0)


def test_gamma_w_stress_many_configurations():
    """Output equivalence across a broad sweep of topologies, k values,
    weight ranges and delay schedules (the gamma_w analog of the GHS
    stress test)."""
    from repro.sim import ScaledDelay

    cases = 0
    for n, extra, w_max in ((8, 6, 4), (12, 14, 8), (16, 20, 16)):
        for seed in range(3):
            g = random_connected_graph(n, extra, seed=seed * 11 + n,
                                       max_weight=w_max)
            dist, _ = dijkstra(g, 0)
            for k in (2, 4):
                for delay, dseed in ((None, 0), (UniformDelay(), seed),
                                     (ScaledDelay(0.0), 0)):
                    res, _t = run_spt_synch(g, 0, k=k, delay=delay,
                                            seed=dseed)
                    for v in g.vertices:
                        d, _p = res.result_of(v)
                        assert d == pytest.approx(dist[v]), (n, seed, k)
                    cases += 1
    assert cases == 3 * 3 * 2 * 3
