"""Robustness: unusual vertex labels, float weights, run-control limits.

The paper's model doesn't care what vertices are called or whether weights
are integers (synchronous semantics aside), so neither should the
asynchronous protocol suite.
"""

import random

import pytest

from repro.core import MAX, compute_global_function, shallow_light_tree
from repro.graphs import WeightedGraph, mst_weight, network_params
from repro.protocols import (
    run_con_hybrid,
    run_dfs,
    run_flood,
    run_leader_election,
    run_mst_centr,
    run_mst_fast,
    run_mst_ghs,
    run_spt_centr,
)
from repro.sim import Network, Process


def _string_graph(n=12, extra=10, seed=4):
    rng = random.Random(seed)
    names = [f"host-{i:02d}" for i in range(n)]
    g = WeightedGraph(vertices=names)
    for i in range(1, n):
        g.add_edge(names[rng.randrange(i)], names[i], rng.randint(1, 9))
    added = 0
    while added < extra:
        a, b = rng.sample(names, 2)
        if not g.has_edge(a, b):
            g.add_edge(a, b, rng.randint(1, 9))
            added += 1
    return g, names


def _float_graph(n=12, extra=10, seed=5):
    rng = random.Random(seed)
    g = WeightedGraph(vertices=range(n))
    for v in range(1, n):
        g.add_edge(rng.randrange(v), v, rng.uniform(0.5, 9.5))
    added = 0
    while added < extra:
        a, b = rng.sample(range(n), 2)
        if not g.has_edge(a, b):
            g.add_edge(a, b, rng.uniform(0.5, 9.5))
            added += 1
    return g


# --------------------------------------------------------------------- #
# String-labeled vertices through the whole suite
# --------------------------------------------------------------------- #


def test_string_vertices_flood_dfs():
    g, names = _string_graph()
    _, tree = run_flood(g, names[0])
    assert tree.is_tree()
    _, tree = run_dfs(g, names[0])
    assert tree.is_tree()


def test_string_vertices_mst_suite():
    g, names = _string_graph()
    v_opt = mst_weight(g)
    for runner in (run_mst_ghs, run_mst_fast):
        _, tree = runner(g)
        assert tree.total_weight() == pytest.approx(v_opt)
    _, tree = run_mst_centr(g, names[0])
    assert tree.total_weight() == pytest.approx(v_opt)


def test_string_vertices_leader_and_hybrid():
    g, names = _string_graph()
    _, leader = run_leader_election(g)
    assert leader in g
    outcome = run_con_hybrid(g, names[0])
    assert outcome.output.is_tree()


def test_string_vertices_slt_and_global_function():
    g, names = _string_graph()
    p = network_params(g)
    res = shallow_light_tree(g, names[0], q=2.0)
    assert res.weight <= 2 * p.V + 1e-9
    inputs = {v: len(v) + hash(v) % 7 for v in g.vertices}
    _, value = compute_global_function(g, inputs, MAX)
    assert value == max(inputs.values())


# --------------------------------------------------------------------- #
# Float weights through the asynchronous suite
# --------------------------------------------------------------------- #


def test_float_weights_mst_suite():
    g = _float_graph()
    v_opt = mst_weight(g)
    for runner in (run_mst_ghs,):
        _, tree = runner(g)
        assert tree.total_weight() == pytest.approx(v_opt)
    _, tree = run_mst_centr(g, 0)
    assert tree.total_weight() == pytest.approx(v_opt)


def test_float_weights_spt_centr_and_dfs():
    from repro.graphs import dijkstra, tree_distances

    g = _float_graph()
    _, tree = run_spt_centr(g, 0)
    dist, _ = dijkstra(g, 0)
    assert tree_distances(tree, 0) == pytest.approx(dist)
    _, dfs_tree = run_dfs(g, 0)
    assert dfs_tree.is_tree()


def test_float_weights_rejected_where_integral_semantics_needed():
    from repro.protocols import run_spt_recur
    from repro.sim import SynchronousRunner
    from repro.protocols.spt_synch import SyncBellmanFord

    g = _float_graph()
    with pytest.raises(ValueError):
        run_spt_recur(g, 0)  # unit expansion needs integers
    with pytest.raises(ValueError):
        SynchronousRunner(g, lambda v: SyncBellmanFord(v == 0, 5))


# --------------------------------------------------------------------- #
# Run-control limits
# --------------------------------------------------------------------- #


def test_max_time_cutoff():
    class Ticker(Process):
        def on_start(self):
            if self.node_id == 0:
                self.send(1, 0)

        def on_message(self, frm, k):
            self.send(frm, k + 1)

    g = WeightedGraph([(0, 1, 2.0)])
    net = Network(g, lambda v: Ticker())
    result = net.run(max_time=20.0)
    assert result.time <= 22.0  # one event past the cutoff at most
