"""Tests for the shallow-light tree algorithm (Section 2) — the core result."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import euler_tour, shallow_light_tree
from repro.core.slt import TreeMetric
from repro.graphs import (
    WeightedGraph,
    mst_weight,
    network_params,
    path_graph,
    prim_mst,
    random_connected_graph,
    ring_graph,
    shortest_path_tree,
    spoke_graph,
    tree_distances,
)


# --------------------------------------------------------------------- #
# Euler tour / tree metric helpers
# --------------------------------------------------------------------- #


def test_euler_tour_length_and_weight():
    t = prim_mst(random_connected_graph(15, 0, seed=1))
    tour = euler_tour(t, 0)
    assert len(tour) == 2 * t.num_vertices - 1
    assert tour[0] == tour[-1] == 0
    line_weight = sum(t.weight(a, b) for a, b in zip(tour, tour[1:]))
    assert line_weight == pytest.approx(2 * t.total_weight())


def test_euler_tour_consecutive_entries_adjacent():
    t = prim_mst(random_connected_graph(20, 0, seed=2))
    tour = euler_tour(t, 0)
    for a, b in zip(tour, tour[1:]):
        assert t.has_edge(a, b)


def test_tree_metric_matches_tree_path_weights():
    t = prim_mst(random_connected_graph(20, 0, seed=3))
    metric = TreeMetric(t, 0)
    from repro.graphs import tree_path

    for x in [3, 7, 11]:
        for y in [2, 9, 15]:
            path = tree_path(t, x, y)
            w = sum(t.weight(a, b) for a, b in zip(path, path[1:]))
            assert metric.dist(x, y) == pytest.approx(w)
    assert metric.dist(5, 5) == 0.0


# --------------------------------------------------------------------- #
# SLT guarantees (Lemmas 2.4 / 2.5, Theorem 2.2)
# --------------------------------------------------------------------- #


def _check_slt(graph, root, q):
    p = network_params(graph)
    res = shallow_light_tree(graph, root, q)
    assert res.tree.is_tree()
    assert res.tree.num_vertices == graph.num_vertices
    # Lemma 2.4 (exact): w(T) <= (1 + 2/q) V.
    assert res.weight <= (1.0 + 2.0 / q) * p.V + 1e-6
    # Lemma 2.5 (our provable constant): depth <= (2q + 1) D.
    assert res.depth() <= (2.0 * q + 1.0) * p.D + 1e-6
    return res, p


def test_slt_on_spoke_graph_beats_both_extremes():
    """The [BKJ83] tension instance: SPT heavy, MST deep; SLT neither."""
    g = spoke_graph(40, spoke_weight=100.0, rim_weight=1.0)
    p = network_params(g)
    spt = shortest_path_tree(g, 0)
    mst = prim_mst(g, 0)
    mst_depth = max(tree_distances(mst, 0).values())
    res, _ = _check_slt(g, 0, q=2.0)
    # SPT weighs ~40*100; MST depth ~100+39; SLT stays near both optima.
    assert spt.total_weight() >= 10 * p.V
    assert mst_depth >= 1.3 * p.D
    assert res.weight <= 2.0 * p.V + 1e-9
    assert res.depth() <= 5.0 * p.D + 1e-9


@pytest.mark.parametrize("q", [0.5, 1.0, 2.0, 4.0, 16.0])
def test_slt_bounds_across_q(q):
    g = random_connected_graph(40, 80, seed=17, max_weight=20)
    _check_slt(g, 0, q)


@settings(max_examples=30, deadline=None)
@given(
    st.integers(4, 40),
    st.integers(0, 60),
    st.integers(0, 10_000),
    st.floats(0.25, 8.0),
)
def test_slt_bounds_random(n, extra, seed, q):
    g = random_connected_graph(n, extra, seed=seed)
    _check_slt(g, 0, q)


def test_slt_trivial_graphs():
    g1 = WeightedGraph(vertices=["a"])
    res = shallow_light_tree(g1, "a")
    assert res.tree.num_vertices == 1
    g2 = WeightedGraph([(0, 1, 5.0)])
    res2 = shallow_light_tree(g2, 0)
    assert res2.tree.has_edge(0, 1)


def test_slt_rejects_bad_args():
    g = path_graph(4)
    with pytest.raises(ValueError):
        shallow_light_tree(g, 0, q=0.0)
    with pytest.raises(KeyError):
        shallow_light_tree(g, 99)


def test_slt_large_q_approaches_mst():
    """As q -> infinity no breakpoints fire and the SLT weight -> V."""
    g = random_connected_graph(30, 50, seed=5)
    res = shallow_light_tree(g, 0, q=1e9)
    assert res.weight == pytest.approx(mst_weight(g))
    # Breakpoints may still fire where the Euler tour revisits a vertex
    # (tree distance 0: a free window reset), but nothing gets added.
    assert res.added_path_weight == 0.0


def test_slt_small_q_approaches_spt_depth():
    """As q -> 0 the tree becomes shallow (depth -> D-ish)."""
    g = random_connected_graph(30, 50, seed=6)
    res = shallow_light_tree(g, 0, q=1e-6)
    spt = shortest_path_tree(g, 0)
    spt_depth = max(tree_distances(spt, 0).values())
    assert res.depth() <= spt_depth + 1e-6


def test_slt_breakpoints_monotone():
    g = ring_graph(20, weight=3.0)
    res = shallow_light_tree(g, 0, q=1.0)
    assert res.breakpoints == sorted(set(res.breakpoints))
    assert res.breakpoints[0] == 0


def test_slt_weight_monotone_in_q_on_average():
    """Larger q must never give a *heavier* guarantee; check the measured
    weights are weakly decreasing across a q sweep on a fixed instance."""
    g = random_connected_graph(35, 70, seed=8, max_weight=50)
    v = mst_weight(g)
    weights = [shallow_light_tree(g, 0, q).weight for q in (0.25, 1.0, 4.0, 64.0)]
    # not strictly monotone pointwise in theory, but the guarantee envelope is:
    for q, w in zip((0.25, 1.0, 4.0, 64.0), weights):
        assert w <= (1 + 2 / q) * v + 1e-6
    assert weights[-1] == pytest.approx(v)  # q=64 adds (almost) nothing here
