"""Max-consensus under every synchronizer: the generic-transformer test."""

import pytest

from repro.graphs import diameter, random_connected_graph, ring_graph
from repro.protocols import (
    SyncMaxConsensus,
    run_max_consensus_gamma_w,
    run_max_consensus_reference,
)
from repro.sim import UniformDelay
from repro.synch import run_alpha_w, run_beta_w


def _values(g, seed=0):
    return {v: (hash((v, seed)) % 1000) for v in g.vertices}


def test_reference_converges_to_global_max():
    g = random_connected_graph(20, 30, seed=1, max_weight=6)
    values = _values(g)
    res = run_max_consensus_reference(g, values)
    target = max(values.values())
    for v in g.vertices:
        assert res.result_of(v) == target


def test_reference_pulse_count_at_most_diameter():
    g = ring_graph(12, weight=3.0)
    values = {v: v for v in g.vertices}
    res = run_max_consensus_reference(g, values)
    # Convergence along shortest paths: last activity within D + W.
    assert res.pulses <= diameter(g) + 3 + 1


def test_gamma_w_matches_reference():
    g = random_connected_graph(16, 24, seed=2, max_weight=8)
    values = _values(g, seed=5)
    target = max(values.values())
    res = run_max_consensus_gamma_w(g, values, delay=UniformDelay(), seed=3)
    for v in g.vertices:
        assert res.result_of(v) == target


@pytest.mark.parametrize("runner_name", ["alpha", "beta"])
def test_simple_synchronizers_host_it_too(runner_name):
    g = random_connected_graph(12, 18, seed=3, max_weight=5)
    values = _values(g, seed=9)
    target = max(values.values())
    stop = int(diameter(g)) + 1
    w_max = int(max(w for _, _, w in g.edges()))
    max_pulse = 4 * (stop + 1) + 4 * w_max + 8
    factory = lambda v: SyncMaxConsensus(values[v], stop)
    if runner_name == "alpha":
        res = run_alpha_w(g, factory, max_pulse=max_pulse)
    else:
        res = run_beta_w(g, factory, max_pulse=max_pulse)
    for v in g.vertices:
        assert res.result_of(v) == target
