"""Replay engine: byte-identity, divergence localization, golden corpus."""

import json
from pathlib import Path

import pytest

from repro.faults import FaultPlan
from repro.obs import TraceRecorder, load_jsonl, to_jsonl
from repro.replay import (
    ReplayError,
    ReplaySpec,
    bisect_divergence,
    check_golden,
    first_divergence,
    golden_paths,
    record_golden,
    record_run,
    replay_trace,
    spec_of,
    verify_trace,
)

GOLDEN_DIR = Path(__file__).resolve().parent / "fixtures" / "golden"

SPEC = ReplaySpec(protocol="broadcast", n=10, extra_edges=10, graph_seed=2,
                  plan=FaultPlan(drop=0.2, seed=9))


# --------------------------------------------------------------------- #
# Record / replay / verify
# --------------------------------------------------------------------- #

def test_record_replay_byte_identity():
    run = record_run(SPEC)
    assert run.outcome.status == "ok"
    report = verify_trace(load_jsonl(run.text))
    assert report.ok, report.describe()


def test_replay_header_round_trips_the_spec():
    run = record_run(SPEC)
    trace = load_jsonl(run.text)
    spec = spec_of(trace)
    assert spec.protocol == SPEC.protocol
    assert spec.seed == SPEC.seed
    assert spec.plan.to_dict() == SPEC.plan.to_dict()
    assert spec.graph_fp  # stamped at record time


def test_replay_without_header_refuses():
    recorder = TraceRecorder()
    recorder.record_send(0.0, 0, 1, "x", 1.0)
    recorder.finalize(1.0, status="completed")
    with pytest.raises(ReplayError, match="no 'replay' meta header"):
        replay_trace(load_jsonl(to_jsonl(recorder)))


def test_unknown_protocol_refuses():
    with pytest.raises(ReplayError, match="unknown protocol"):
        record_run(ReplaySpec(protocol="nonesuch", n=8, extra_edges=6))


def test_fingerprint_mismatch_refuses():
    run = record_run(SPEC)
    lines = run.text.splitlines()
    meta = json.loads(lines[0])
    meta["replay"]["graph_fp"] = "0" * 16
    lines[0] = json.dumps(meta, sort_keys=True)
    tampered = load_jsonl("\n".join(lines) + "\n")
    with pytest.raises(ReplayError, match="fingerprint mismatch"):
        replay_trace(tampered)


def test_gamma_w_records_and_replays():
    # The synchronizer stack (normalized graph, in-synch transform, gamma
    # clusters) under the same byte-identity contract as flat protocols.
    spec = ReplaySpec(protocol="gamma_w(max)", n=8, extra_edges=6,
                      graph_seed=3)
    run = record_run(spec)
    assert run.outcome.status == "ok"
    report = verify_trace(load_jsonl(run.text))
    assert report.ok, report.describe()


# --------------------------------------------------------------------- #
# Differential replay
# --------------------------------------------------------------------- #

def test_perturbed_plan_seed_yields_localized_divergence():
    base = record_run(SPEC)
    perturbed = record_run(ReplaySpec(
        protocol=SPEC.protocol, n=SPEC.n, extra_edges=SPEC.extra_edges,
        graph_seed=SPEC.graph_seed,
        plan=SPEC.plan.replace(seed=SPEC.plan.seed + 1)))
    div = first_divergence(base.text, perturbed.text)
    assert div is not None
    assert div.index >= 0
    assert div.fields  # names the differing fields, not just "differs"
    # Everything before the divergence point is identical.
    base_events = base.text.splitlines()[1:]
    pert_events = perturbed.text.splitlines()[1:]
    assert base_events[:div.index] == pert_events[:div.index]
    assert "event #" in div.describe()


def test_divergent_deliver_resolves_its_send():
    base = record_run(SPEC)
    perturbed = record_run(ReplaySpec(
        protocol=SPEC.protocol, n=SPEC.n, extra_edges=SPEC.extra_edges,
        graph_seed=SPEC.graph_seed, plan=SPEC.plan.replace(drop=0.35)))
    div = first_divergence(base.text, perturbed.text)
    assert div is not None
    # At least one side of the first divergence is send-linked.
    if div.left and div.left.get("ref") is not None:
        assert div.left_send is not None
        assert div.left_send["kind"] == "send"


def test_identical_traces_have_no_divergence():
    run = record_run(SPEC)
    assert first_divergence(run.text, run.text) is None


def test_aggregate_only_divergence_reports_meta():
    spec0 = ReplaySpec(protocol="broadcast", n=10, extra_edges=10,
                       plan=FaultPlan(drop=0.2, seed=9), limit=0)
    spec1 = ReplaySpec(protocol="broadcast", n=10, extra_edges=10,
                       plan=FaultPlan(drop=0.2, seed=10), limit=0)
    div = first_divergence(record_run(spec0).text, record_run(spec1).text)
    assert div is not None and div.index == -1
    assert "meta headers differ" in div.describe()


def test_bisect_finds_first_divergent_knob():
    texts = {}

    def trace_of(x):
        # Knob semantics: plan seed flips at x == 3.
        if x not in texts:
            plan = FaultPlan(drop=0.2, seed=9 if x < 3 else 77)
            texts[x] = record_run(ReplaySpec(
                protocol="broadcast", n=10, extra_edges=10,
                plan=plan)).text
        return texts[x]

    x, div = bisect_divergence(0, 6, trace_of)
    assert x == 3
    assert div is not None


def test_bisect_rejects_identical_range():
    run = record_run(SPEC)
    with pytest.raises(ValueError, match="matches the baseline"):
        bisect_divergence(0, 4, lambda x: run.text)


# --------------------------------------------------------------------- #
# Golden corpus
# --------------------------------------------------------------------- #

def test_record_and_check_golden(tmp_path):
    path = record_golden(SPEC, str(tmp_path / "flood.jsonl"))
    report = check_golden(path)
    assert report.ok, report.describe()


def test_corrupted_golden_is_localized(tmp_path):
    path = record_golden(SPEC, str(tmp_path / "flood.jsonl"))
    lines = Path(path).read_text().splitlines()
    last = json.loads(lines[-1])
    last["t"] = last["t"] + 1.0
    lines[-1] = json.dumps(last, sort_keys=True)
    Path(path).write_text("\n".join(lines) + "\n")
    report = check_golden(path)
    assert not report.ok
    assert report.divergence is not None
    assert report.divergence.index == len(lines) - 2  # 0-based event index
    assert "t" in report.divergence.fields


def test_golden_paths_listing(tmp_path):
    assert golden_paths(str(tmp_path / "missing")) == []
    (tmp_path / "b.jsonl").write_text("x")
    (tmp_path / "a.jsonl").write_text("x")
    (tmp_path / "notes.txt").write_text("x")
    names = [Path(p).name for p in golden_paths(str(tmp_path))]
    assert names == ["a.jsonl", "b.jsonl"]


@pytest.mark.parametrize("path", golden_paths(str(GOLDEN_DIR)) or ["<none>"])
def test_committed_golden_corpus_replays(path):
    # The committed regression corpus (tests/fixtures/golden): every pinned
    # trace must replay byte-identically on every platform and run.
    if path == "<none>":
        pytest.skip("no committed golden traces")
    report = check_golden(path)
    assert report.ok, f"{path}: {report.describe()}"
