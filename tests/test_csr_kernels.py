"""Golden equality tests: CSR kernels vs the dict-of-dicts reference path.

Every kernel in :mod:`repro.graphs.csr` claims *byte-identical* results to
the dict algorithms it replaces — same values, same tie-breaking, same
dict insertion order, bit-equal float sums.  These tests pin that claim on
a spread of shapes: random integer-weight graphs (the Dial bucket-queue
scan path), unit-weight tie-heavy topologies, fractional weights (the
binary-heap scan fallback), trees, and multi-component graphs.

The whole module runs once per kernel backend (``each_backend``): the
public entry points (``prim_mst``, ``kruskal_mst``, the cache) must pin
the same golden values whether they dispatch to the pure-Python CSR
kernels or the NumPy backend.
"""

import math

import pytest

pytestmark = pytest.mark.usefixtures("each_backend")

from repro.graphs import (
    WeightedGraph,
    binary_tree,
    complete_graph,
    dijkstra,
    grid_graph,
    param_cache,
    prim_mst,
    kruskal_mst,
    random_connected_graph,
    star_graph,
)
from repro.graphs.csr import (
    CSRGraph,
    all_sources_scan,
    csr_kruskal_mst,
    csr_of,
    csr_prim_mst,
    sssp_maps,
)
from repro.graphs.mst import kruskal_mst_dicts, prim_mst_dicts

INF = float("inf")


def fractional_graph():
    """Non-integral weights: forces the heap path (``iadj is None``)."""
    g = WeightedGraph()
    g.add_edge(0, 1, 0.25)
    g.add_edge(1, 2, 0.5)
    g.add_edge(0, 2, 0.75)  # exact tie with the 0->1->2 path
    g.add_edge(2, 3, 1.25)
    g.add_edge(1, 3, 1.5)
    return g


def two_components():
    g = WeightedGraph()
    g.add_edge("a", "b", 1)
    g.add_edge("b", "c", 2)
    g.add_edge("x", "y", 3)
    return g


GOLDEN = [
    random_connected_graph(24, 40, seed=13),
    random_connected_graph(9, 0, seed=3),  # a random tree
    grid_graph(5, 4),
    complete_graph(8),
    star_graph(7),
    binary_tree(3),  # depth 3: 15 vertices
    fractional_graph(),
]


@pytest.mark.parametrize("graph", GOLDEN)
def test_sssp_maps_byte_identical_to_dict_dijkstra(graph):
    csr = CSRGraph(graph)
    for source in graph.vertices:
        d_dist, d_parent = dijkstra(graph, source)
        c_dist, c_parent = sssp_maps(csr, source)
        assert c_dist == d_dist
        assert c_parent == d_parent
        # Same dict *insertion order*, not just the same mappings.
        assert list(c_dist) == list(d_dist)
        assert list(c_parent) == list(d_parent)


def test_sssp_maps_unknown_source_raises_keyerror():
    csr = CSRGraph(grid_graph(3, 3))
    with pytest.raises(KeyError):
        sssp_maps(csr, "nope")


@pytest.mark.parametrize("graph", GOLDEN)
def test_scan_matches_per_source_dict_formulas(graph):
    n = graph.num_vertices
    csr = CSRGraph(graph)
    scan = all_sources_scan(csr)
    ecc = dict(zip(csr.verts, scan.ecc))
    exp_nbr = 0.0
    exp_diam = 0.0
    for s in graph.vertices:
        dist, _ = dijkstra(graph, s)
        expected = max(dist.values()) if len(dist) == n else INF
        assert ecc[s] == expected
        exp_diam = max(exp_diam, expected)
        for v, _w in graph.neighbor_weights(s).items():
            exp_nbr = max(exp_nbr, dist[v])
    assert scan.diameter == exp_diam
    assert scan.max_neighbor_distance == exp_nbr
    # Integral-weight graphs go through the Dial bucket queue; results
    # must still be floats (int sums convert exactly).
    assert all(isinstance(e, float) for e in scan.ecc)


def test_scan_disconnected_graph_has_infinite_eccentricities():
    g = two_components()
    scan = all_sources_scan(CSRGraph(g))
    assert all(e == INF for e in scan.ecc)
    assert scan.diameter == INF
    # Neighbor distances stay finite: neighbors are always reachable.
    assert scan.max_neighbor_distance == 3.0


def test_fractional_graph_skips_dial_path():
    assert CSRGraph(fractional_graph()).iadj is None
    assert CSRGraph(grid_graph(3, 3)).iadj is not None


def test_zero_weight_edges_cannot_exist():
    # The graph API bans non-positive weights, so the kernels never see a
    # zero-weight edge; this pins the invariant the Dial queue relies on.
    g = WeightedGraph()
    with pytest.raises(ValueError):
        g.add_edge(0, 1, 0)
    with pytest.raises(ValueError):
        g.add_edge(0, 1, -1.5)


@pytest.mark.parametrize("graph", GOLDEN)
def test_prim_byte_identical_to_dict_prim(graph):
    csr = CSRGraph(graph)
    for root_idx in (0, graph.num_vertices // 2):
        root = graph.vertices[root_idx]
        d_tree = prim_mst_dicts(graph, root)
        c_tree = csr_prim_mst(csr, csr.index[root])
        assert list(c_tree.vertices) == list(d_tree.vertices)
        assert list(c_tree.edges()) == list(d_tree.edges())
        # Same insertion order => bit-equal float accumulation.
        assert repr(c_tree.total_weight()) == repr(d_tree.total_weight())


@pytest.mark.parametrize("graph", GOLDEN)
def test_kruskal_byte_identical_to_dict_kruskal(graph):
    d_tree = kruskal_mst_dicts(graph)
    c_tree = csr_kruskal_mst(CSRGraph(graph))
    assert list(c_tree.vertices) == list(d_tree.vertices)
    assert list(c_tree.edges()) == list(d_tree.edges())
    assert repr(c_tree.total_weight()) == repr(d_tree.total_weight())


def test_mst_on_disconnected_graph_raises():
    g = two_components()
    with pytest.raises(ValueError):
        csr_prim_mst(CSRGraph(g))
    with pytest.raises(ValueError):
        csr_kruskal_mst(CSRGraph(g))


def test_public_mst_entry_points_route_through_csr():
    g = random_connected_graph(16, 20, seed=5)
    assert list(prim_mst(g).edges()) == list(prim_mst_dicts(g).edges())
    assert list(prim_mst(g, root=g.vertices[3]).edges()) == \
        list(prim_mst_dicts(g, root=g.vertices[3]).edges())
    assert list(kruskal_mst(g).edges()) == list(kruskal_mst_dicts(g).edges())


def test_csr_of_memoizes_per_version_and_rebuilds_on_mutation():
    g = random_connected_graph(10, 8, seed=2)
    cache = param_cache(g)
    first = csr_of(g)
    assert csr_of(g) is first  # same version -> same snapshot object
    assert cache.stats()["csr_builds"] == 1
    assert first.version == g.version

    before = dict(zip(first.verts, all_sources_scan(first).ecc))
    g.add_edge(g.vertices[0], g.vertices[5], 1)  # mutation bumps version
    second = csr_of(g)
    assert second is not first
    assert second.version == g.version
    assert cache.stats()["csr_builds"] == 2
    # The old snapshot still describes the old graph; the new one sees
    # the shortcut edge.
    after = dict(zip(second.verts, all_sources_scan(second).ecc))
    assert after != before or g.num_edges == 0
    assert second.m == first.m + 1


def test_cache_params_unchanged_by_csr_routing():
    # The public cache accessors must agree with freshly computed dict
    # formulas (this is what every experiment actually calls).
    g = random_connected_graph(14, 20, seed=2)
    cache = param_cache(g)
    n = g.num_vertices
    expected_ecc = {}
    for s in g.vertices:
        dist, _ = dijkstra(g, s)
        expected_ecc[s] = max(dist.values()) if len(dist) == n else INF
    assert cache.eccentricities() == expected_ecc
    assert list(cache.eccentricities()) == list(g.vertices)
    assert cache.diameter() == max(expected_ecc.values())
    assert math.isclose(cache.mst_weight(),
                        prim_mst_dicts(g).total_weight(), rel_tol=0, abs_tol=0)
