"""Tests for flooding, tree broadcast/convergecast, DFS, MST/SPT_centr."""

import pytest

from repro.graphs import (
    WeightedGraph,
    mst_weight,
    network_params,
    path_graph,
    prim_mst,
    random_connected_graph,
    ring_graph,
    shortest_path_tree,
    tree_distances,
)
from repro.protocols import (
    Governor,
    run_convergecast,
    run_dfs,
    run_flood,
    run_mst_centr,
    run_spt_centr,
    run_tree_broadcast,
)
from repro.sim import ScaledDelay, UniformDelay


# --------------------------------------------------------------------- #
# CON_flood (Fact 6.1)
# --------------------------------------------------------------------- #


def test_flood_reaches_everyone_and_builds_tree():
    g = random_connected_graph(30, 40, seed=1)
    result, tree = run_flood(g, 0, payload="hello")
    for v in g.vertices:
        payload, _ = result.result_of(v)
        assert payload == "hello"
    assert tree.is_tree()
    assert tree.num_vertices == g.num_vertices


def test_flood_cost_at_most_2E_time_at_most_D():
    g = random_connected_graph(25, 50, seed=2)
    p = network_params(g)
    result, _ = run_flood(g, 0)
    assert result.comm_cost <= 2 * p.E + 1e-9
    # Under maximal delays the flood follows shortest paths, so the last
    # node learns the payload within D (stray duplicates may land later).
    assert result.finish_time <= p.D + 1e-9


def test_flood_time_equals_eccentricity_under_max_delay():
    g = path_graph(6, weight=3.0)
    result, _ = run_flood(g, 0)
    assert result.finish_time == pytest.approx(15.0)


def test_flood_tree_is_spt_under_max_delay():
    # With delay == w(e) exactly, first receipt comes along a shortest path.
    g = random_connected_graph(20, 30, seed=3)
    _, tree = run_flood(g, 0)
    from repro.graphs import dijkstra

    dist, _ = dijkstra(g, 0)
    depths = tree_distances(tree, 0)
    assert depths == pytest.approx(dist)


# --------------------------------------------------------------------- #
# Tree broadcast / convergecast
# --------------------------------------------------------------------- #


def test_broadcast_cost_is_tree_weight():
    g = random_connected_graph(20, 25, seed=4)
    t = prim_mst(g)
    root = g.vertices[0]
    result = run_tree_broadcast(t, root, "v")
    assert result.comm_cost == pytest.approx(t.total_weight())
    assert all(r == "v" for r in result.results().values())
    depth = max(tree_distances(t, root).values())
    assert result.time == pytest.approx(depth)


def test_convergecast_aggregates():
    t = path_graph(5)
    values = {v: v for v in t.vertices}
    result, total = run_convergecast(t, 0, values, lambda a, b: a + b)
    assert total == 10
    assert result.comm_cost == pytest.approx(t.total_weight())


def test_convergecast_max_on_random_tree():
    g = random_connected_graph(30, 0, seed=9)  # a random tree
    values = {v: (v * 7) % 31 for v in g.vertices}
    _, best = run_convergecast(g, 0, values, max)
    assert best == max(values.values())


def test_broadcast_bad_root_raises():
    t = WeightedGraph([(0, 1, 1.0), (2, 3, 1.0)])
    with pytest.raises(ValueError):
        run_tree_broadcast(t, 0, "x")


# --------------------------------------------------------------------- #
# DFS (Fact 6.2)
# --------------------------------------------------------------------- #


def test_dfs_visits_all_and_builds_tree():
    g = random_connected_graph(25, 35, seed=5)
    result, tree = run_dfs(g, 0)
    assert tree.is_tree()
    assert tree.num_vertices == g.num_vertices
    assert all(p.visited for p in result.processes.values())


def test_dfs_cost_linear_in_E():
    g = random_connected_graph(30, 60, seed=6)
    p = network_params(g)
    result, _ = run_dfs(g, 0)
    # Each edge traversed at most 4x (token+back in both directions) plus
    # geometric update traffic (<= 4x total cost); generous constant:
    assert result.comm_cost <= 12 * p.E


def test_dfs_root_estimate_within_factor_two():
    g = random_connected_graph(20, 30, seed=7)
    result, _ = run_dfs(g, 0)
    root = result.processes[0]
    traversal_cost = result.metrics.cost_by_tag["dfs"]
    final = result.result_of(0)
    assert final <= root.est_root * 2 + 1e-9 or root.est_root >= final / 2
    # The token's own accounting matches the dfs-tagged traffic.
    assert final == pytest.approx(traversal_cost)


def test_dfs_under_random_delays_still_correct():
    g = random_connected_graph(15, 25, seed=8)
    result, tree = run_dfs(g, 0, delay=UniformDelay(), seed=123)
    assert tree.is_tree()


def test_dfs_governor_called():
    calls = []

    class Spy(Governor):
        def request(self, algo, est, grant):
            calls.append(est)
            grant()

        def algorithm_finished(self, algo, cost):
            calls.append(("done", algo, cost))

    g = ring_graph(8, weight=2.0)
    run_dfs(g, 0, governor=Spy())
    assert calls, "governor should be consulted at least once"
    # Estimates are increasing and geometric-ish (each >= 2x ... the previous
    # *root* estimate, so at least doubling apart).
    ests = [c for c in calls if not isinstance(c, tuple)]
    for a, b in zip(ests, ests[1:]):
        assert b > a


# --------------------------------------------------------------------- #
# MST_centr / SPT_centr (Corollaries 6.4 / 6.6)
# --------------------------------------------------------------------- #


def test_mst_centr_builds_mst():
    g = random_connected_graph(20, 30, seed=10)
    result, tree = run_mst_centr(g, 0)
    assert tree.is_tree()
    assert tree.total_weight() == pytest.approx(mst_weight(g))


def test_mst_centr_cost_bound():
    g = random_connected_graph(20, 30, seed=11)
    p = network_params(g)
    result, _ = run_mst_centr(g, 0)
    # O(n V): per phase <= 2 w(T) + 2 w(e) <= 4V, n-1 phases.
    assert result.comm_cost <= 4 * p.n * p.V + 1e-9


def test_spt_centr_builds_spt():
    g = random_connected_graph(20, 30, seed=12)
    result, tree = run_spt_centr(g, 0)
    assert tree.is_tree()
    ref = shortest_path_tree(g, 0)
    assert tree_distances(tree, 0) == pytest.approx(tree_distances(ref, 0))


def test_spt_centr_cost_bound():
    g = random_connected_graph(15, 25, seed=13)
    p = network_params(g)
    result, tree = run_spt_centr(g, 0)
    # O(n w(SPT)) <= O(n^2 V) (Fact 6.5).
    assert result.comm_cost <= 4 * p.n * (p.n - 1) * p.V + 1e-9


def test_centr_algorithms_work_under_random_delays():
    g = random_connected_graph(15, 20, seed=14)
    _, t1 = run_mst_centr(g, 0, delay=UniformDelay(), seed=77)
    assert t1.total_weight() == pytest.approx(mst_weight(g))
    _, t2 = run_spt_centr(g, 0, delay=ScaledDelay(0.3), seed=77)
    ref = shortest_path_tree(g, 0)
    assert tree_distances(t2, 0) == pytest.approx(tree_distances(ref, 0))


def test_mst_centr_on_path():
    g = path_graph(6, weight=2.0)
    _, tree = run_mst_centr(g, 0)
    assert tree.total_weight() == pytest.approx(10.0)
