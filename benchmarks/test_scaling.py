"""Scaling: protocol costs and simulator throughput at larger sizes.

Not a paper artifact — engineering due diligence: (a) the measured
communication of the flagship algorithms tracks its bound as n grows into
the hundreds, and (b) the discrete-event core sustains a healthy event
rate, so the paper-scale experiments above are nowhere near the
simulator's limits.
"""

import math
import time

from repro.graphs import network_params, random_connected_graph, ring_graph
from repro.protocols import run_mst_ghs, run_spt_recur
from repro.sim import Network, Process

from .util import once, print_table


def _ghs_scaling():
    rows = []
    for n in (50, 100, 200):
        g = random_connected_graph(n, 3 * n, seed=n, max_weight=8)
        p = network_params(g)
        start = time.perf_counter()
        res, tree = run_mst_ghs(g)
        wall = time.perf_counter() - start
        bound = p.E + p.V * math.log2(p.n)
        rows.append([
            p.n, p.m, res.message_count, res.comm_cost,
            res.comm_cost / bound, wall,
        ])
        assert tree.is_tree()
    return rows


def _spt_scaling():
    rows = []
    for n in (40, 80, 160):
        g = random_connected_graph(n, 2 * n, seed=n, max_weight=5)
        p = network_params(g)
        start = time.perf_counter()
        res, tree = run_spt_recur(g, 0)
        wall = time.perf_counter() - start
        rows.append([
            p.n, p.m, res.message_count, res.comm_cost, wall,
        ])
    return rows


class _Relay(Process):
    """A message storm with a fixed total count, for raw throughput."""

    def __init__(self, hops):
        self.hops = hops

    def on_start(self):
        if self.node_id == 0:
            for v in self.neighbors():
                self.send(v, self.hops)

    def on_message(self, frm, ttl):
        if ttl > 0:
            for v in self.neighbors():
                if v != frm:
                    self.send(v, ttl - 1)


def _throughput():
    g = ring_graph(64)
    start = time.perf_counter()
    # Two waves circling the ring: 2 messages per hop, until the cap.
    net = Network(g, lambda v: _Relay(hops=200_000))
    result = net.run(max_events=400_000,
                     stop_when=lambda n: n.metrics.message_count >= 300_000)
    wall = time.perf_counter() - start
    return result.message_count, wall, result.message_count / wall


def test_scaling(benchmark):
    ghs_rows, spt_rows, (msgs, wall, rate) = once(
        benchmark, lambda: (_ghs_scaling(), _spt_scaling(), _throughput())
    )
    print_table(
        "Scaling: MST_ghs on random graphs (m = 4n)",
        ["n", "m", "messages", "comm", "comm/(E + V log n)", "wall s"],
        ghs_rows,
    )
    print_table(
        "Scaling: SPT_recur on random graphs (m = 3n)",
        ["n", "m", "messages", "comm", "wall s"],
        spt_rows,
    )
    print(f"\nsimulator throughput: {msgs} messages in {wall:.2f}s "
          f"({rate:,.0f} msg/s)")
    # The normalized GHS cost stays O(1) as n quadruples.
    ratios = [r[4] for r in ghs_rows]
    assert max(ratios) <= 3 * min(ratios)
    # Raw throughput sanity: at least 50k events/sec on any modern box.
    assert rate > 50_000
