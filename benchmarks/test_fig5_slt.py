"""Figure 5/6 — the shallow-light tree algorithm and Theorem 2.7.

Lemma 2.4:  w(T)    <= (1 + 2/q) V
Lemma 2.5:  depth(T) = O(q D)
Theorem 2.7: distributed construction in O(V n^2) comm, O(D n^2) time.

Delegates to :mod:`repro.experiments.slt`.
"""

from repro.experiments.slt import distributed_sweep, q_sweep
from repro.graphs import spoke_graph

from .util import once, print_table


def _run_all():
    graph = spoke_graph(30, spoke_weight=100.0, rim_weight=1.0)
    p, q_rows = q_sweep(graph)
    return p, q_rows, distributed_sweep()


def test_fig5_slt_tradeoff_and_distributed(benchmark):
    p, q_rows, n_rows = once(benchmark, _run_all)
    print_table(
        f"Figure 5/6: SLT trade-off on the spoke graph  [{p}]",
        ["tree", "weight", "weight/V", "diam<=2depth", "(1+2/q)"],
        q_rows,
    )
    print_table(
        "Theorem 2.7: distributed SLT construction (q = 2)",
        ["n", "comm", "comm/(V n^2)", "time", "time/(D n^2)", "w(T)/V"],
        n_rows,
    )
    # Theorem 2.7 bounds (generous constants); per-q Lemma 2.4/2.5 bounds
    # are asserted inside q_sweep itself.
    for row in n_rows:
        assert row[2] <= 8.0   # comm / (V n^2)
        assert row[4] <= 8.0   # time / (D n^2)
        assert row[5] <= 2.0 + 1e-6  # w(T)/V at q=2
    # Shape: the normalized ratios shrink or stay flat as n grows.
    assert n_rows[-1][2] <= max(1.0, 2 * n_rows[0][2])
