"""Design-choice ablations DESIGN.md calls out.

1. Tree edge-cover parameter k (gamma*'s preprocessing knob).
2. GHS cost decomposition (the E-term vs the V log n-term of Lemma 8.1).
3. Hybrid race initial budget insensitivity.

Delegates to the experiments package.
"""

from repro.experiments.clock_sync import cover_sweep
from repro.experiments.connectivity import _budget_ablation
from repro.experiments.mst import ghs_decomposition

from .util import once, print_table


def _run_all():
    return cover_sweep(), ghs_decomposition(), _budget_ablation()


def test_ablations(benchmark):
    (p, cover_rows), ghs_table, budget_table = once(benchmark, _run_all)
    print_table(
        f"Ablation 1: tree edge-cover k for gamma*  [{p}]",
        ["k", "#trees", "max depth", "edge load", "pulse delay",
         "cost/pulse"],
        cover_rows,
    )
    print_table(ghs_table.title, ghs_table.header, ghs_table.rows)
    print_table(budget_table.title, budget_table.header, budget_table.rows)
    # Cover trade-off: edge load shrinks (or stays) as k grows.
    loads = [r[3] for r in cover_rows]
    assert loads[-1] <= loads[0]
    # GHS decomposition: both normalized terms stay O(1) across the sweep.
    for row in ghs_table.rows:
        assert row[4] <= 4.0       # probe/E
        assert row[6] <= 6.0       # tree/(V log n)
    # Budget insensitivity: total cost varies < 4x across a 512x sweep of
    # the initial budget, and the winner never changes.
    totals = [r[3] for r in budget_table.rows]
    winners = {r[2] for r in budget_table.rows}
    assert max(totals) <= 4 * min(totals)
    assert len(winners) == 1
