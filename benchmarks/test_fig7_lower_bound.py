"""Figures 7/8 — the Omega(n V) connectivity lower bound on G_n.

Lemma 7.2: any correct comparison-based spanning-tree algorithm needs
``X * sum_i (n + 1 - 2i) >= n^2 X / 4`` communication on G_n.  Delegates
to :mod:`repro.experiments.lower_bound` and asserts tightness (a flat
measured/bound ratio).
"""

from repro.experiments.lower_bound import gn_sweep

from .util import once, print_table


def test_fig7_lower_bound_family(benchmark):
    rows = once(benchmark, gn_sweep)
    print_table(
        "Figure 7: connectivity on G_n (X = n+1; bypass edges X^4)",
        ["n", "E", "nV", "Omega(n^2 X/4)", "measured", "ratio", "winner"],
        rows,
    )
    ratios = [r[5] for r in rows]
    for r in rows:
        # Lower bound respected...
        assert r[4] >= r[3] - 1e-9
        # ...and the E-side never wins here (bypass edges are prohibitive).
        assert r[6] == "MST_centr"
        assert r[4] < r[1]  # far below script-E
    # Tightness: measured / lower-bound ratio stays bounded as n grows.
    assert max(ratios) <= 4 * min(ratios)


def test_unity_weight_E_side(benchmark):
    """[AGPV89]: with unity weights the bound's E side binds — the hybrid's
    cost per unit of E stays O(1) as the graph scales."""
    from repro.experiments.lower_bound import unity_sweep

    rows = once(benchmark, unity_sweep)
    print_table(
        "[AGPV89] side: unity weights (E << nV)",
        ["n", "m", "E", "measured", "measured/E", "winner"],
        rows,
    )
    ratios = [r[4] for r in rows]
    for r in rows:
        assert r[3] >= r[2]          # Omega(E) respected
        assert r[5] == "DFS"         # the E-arm wins this regime
    assert max(ratios) <= 3 * min(ratios)  # flat: Theta(E)
