"""Figure 4 — shortest path tree algorithms (+ the Figure 9 strip ablation).

Paper's table:
    SPT_centr   O(w(SPT) n) = O(n^2 V) comm,  O(n D) time
    SPT_recur   O(E^{1+eps}) comm/time  (ours: strip method)
    SPT_synch   O(E + D k n log n) comm, O(D log_k n log n) time
    SPT_hybrid  min of the above
    lower bound Omega(min{E, nV}) comm, Omega(D) time

Delegates to :mod:`repro.experiments.spt`.
"""

import math

from repro.experiments.spt import K, figure4_bounds, spt_suite, strip_sweep
from repro.graphs import random_connected_graph

from .util import once, print_table


def _run_all():
    graph = random_connected_graph(30, 50, seed=4, max_weight=6)
    p, costs = spt_suite(graph)
    strips = strip_sweep(graph)
    return p, costs, strips


def test_fig4_spt(benchmark):
    p, costs, strip_rows = once(benchmark, _run_all)
    bounds = figure4_bounds(p)
    rows = []
    for name, (c, t) in costs.items():
        b = bounds[name]
        rows.append([name, c, t, b if b else "min", c / b if b else ""])
    print_table(
        f"Figure 4: SPT algorithms  [{p}]",
        ["algorithm", "comm", "time", "paper bound", "comm/bound"],
        rows,
    )
    print_table(
        "Figure 9 ablation: SPT_recur strip stride d",
        ["stride d", "comm", "sync cost", "explore cost", "time"],
        strip_rows,
    )
    logn = math.log2(p.n)
    assert costs["SPT_centr"][0] <= 4 * p.n * p.n * p.V
    assert costs["SPT_synch"][0] <= 8 * (p.E + p.D * K * p.n * logn)
    # Hybrid lands within a dovetailing constant of the best arm.
    best = min(costs["SPT_synch"][0], costs["SPT_recur"][0])
    assert costs["SPT_hybrid"][0] <= 10 * best
    # Figure 9 shape: global-sync cost decreases with the stride.
    assert strip_rows[-1][2] < strip_rows[0][2]


def test_spt_weight_regimes(benchmark):
    """Section 1.4.3: SPT_synch overtakes SPT_recur once weights are heavy."""
    from repro.experiments.spt import weight_regime_sweep

    rows = once(benchmark, weight_regime_sweep)
    print_table(
        "Section 1.4.3 regimes: SPT_synch vs SPT_recur as weights grow",
        ["scale", "W", "synch comm", "recur comm", "synch/recur",
         "synch time", "recur time"],
        rows,
    )
    ratios = [r[4] for r in rows]
    # The relative cost of SPT_synch falls monotonically with the scale...
    assert all(b < a for a, b in zip(ratios, ratios[1:]))
    # ...and crosses below 1 (SPT_synch wins) in the heaviest regime.
    assert ratios[-1] < 1.0
    assert rows[-1][5] < rows[-1][6]  # it wins on time as well
