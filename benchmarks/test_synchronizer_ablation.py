"""Ablation — network synchronizers alpha_w vs beta_w vs gamma_w.

    alpha_w: C/pulse = Theta(E),   T/pulse = Theta(W)
    beta_w:  C/pulse = Theta(V),   T/pulse = Theta(D)    (over an SLT)
    gamma_w: C/pulse = O(k n log n), T/pulse = O(log_k n log n)

Delegates to :mod:`repro.experiments.synchronizer.synchronizer_comparison`
on three deciding workloads.
"""

from repro.experiments.synchronizer import synchronizer_comparison
from repro.graphs import (
    heavy_edge_clock_graph,
    network_params,
    path_graph,
    random_connected_graph,
)

from .util import once, print_table


def _workloads():
    heavy = heavy_edge_clock_graph(14, heavy=128.0)
    deep = path_graph(24, weight=2.0)
    dense = random_connected_graph(20, 60, seed=12, max_weight=4)
    return {
        "heavy edge (W >> d)": (heavy, *synchronizer_comparison(heavy)),
        "deep path (large D)": (deep, *synchronizer_comparison(deep)),
        "dense random": (dense, *synchronizer_comparison(dense)),
    }


def test_synchronizer_ablation(benchmark):
    data = once(benchmark, _workloads)
    for label, (graph, rows, _results) in data.items():
        print_table(
            f"Synchronizer ablation on {label}  [{network_params(graph)}]",
            ["synchronizer", "pulses", "C/pulse", "T/pulse",
             "total comm", "total time"],
            rows,
        )
    # Heavy-edge workload: alpha_w's per-pulse time tracks W; gamma_w's
    # does not (its level structure touches the heavy edge rarely).
    _, _, heavy_res = data["heavy edge (W >> d)"]
    assert heavy_res["gamma_w"].time_per_pulse < \
        heavy_res["alpha_w"].time_per_pulse / 4
    # Deep-path workload: beta_w's per-pulse time tracks D; the others don't.
    _, _, deep_res = data["deep path (large D)"]
    assert deep_res["alpha_w"].time_per_pulse < \
        deep_res["beta_w"].time_per_pulse / 4
    assert deep_res["gamma_w"].time_per_pulse < \
        deep_res["beta_w"].time_per_pulse / 4
    # Dense workload: beta_w's control cost (~V per pulse over the SLT)
    # beats alpha_w's (~E per pulse).
    _, _, dense_res = data["dense random"]
    assert dense_res["beta_w"].control_cost < dense_res["alpha_w"].control_cost
