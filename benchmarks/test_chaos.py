"""Chaos benchmark: the price of reliability at benchmark scale.

Not a paper artifact — robustness due diligence for the simulator stack:
the full chaos matrix (protocol suite x seeded loss rates, with and
without the reliable transport) on a larger graph than the tier-1 suite
uses, asserting the same contract at scale: reliable runs reproduce the
fault-free answers, raw runs never fail silently, and the cost-sensitive
retransmission overhead at 20% drop stays below 3x the fault-free
communication.
"""

from repro.experiments.chaos import chaos_matrix, make_cases

from .util import once, print_table


def test_chaos_matrix_at_scale(benchmark):
    cases = make_cases(n=40, extra_edges=80, graph_seed=11)
    rows = once(benchmark, lambda: chaos_matrix(cases))

    table = []
    for entry in rows:
        outcome = entry["outcome"]
        comm = outcome.result.comm_cost if outcome.result else float("nan")
        table.append([
            entry["protocol"], entry["drop"],
            "reliable" if entry["reliable"] else "raw",
            outcome.status, comm, outcome.retry_count,
            outcome.retry_cost, entry["overhead_ratio"],
        ])
    print_table(
        "Chaos at scale (n=40): loss rate vs reliability cost",
        ["protocol", "drop", "transport", "status", "comm", "retries",
         "retry_cost", "retry/ff"],
        table,
    )

    for entry in rows:
        outcome = entry["outcome"]
        if entry["reliable"]:
            assert outcome.status == "ok", (
                f"{entry['protocol']} @ {entry['drop']}: {outcome.status}"
            )
            if entry["drop"] == 0.2:
                assert entry["overhead_ratio"] < 3.0
        else:
            assert not outcome.silent_failure
