"""Figure 3 — minimum spanning tree algorithms.

Paper's table:
    MST_ghs     O(E + V log n) comm
    MST_centr   O(n V) comm, O(n Diam(MST)) time
    MST_fast    O(E log n log V) comm, O(Diam(MST) log V log n) time
    MST_hybrid  O(min{E + V log n, n V}) comm
    lower bound Omega(min{E, n V}), Omega(D)

Delegates to :mod:`repro.experiments.mst` and asserts bound ratios plus
the who-wins ordering on both regimes.
"""

from repro.experiments.mst import figure3_bounds, mst_suite
from repro.graphs import lower_bound_graph, random_connected_graph

from .util import once, print_table


def _run_all():
    light = random_connected_graph(40, 100, seed=4, max_weight=4)
    heavy = lower_bound_graph(18)
    return (mst_suite(light, 0), mst_suite(heavy, 1))


def test_fig3_mst(benchmark):
    (p1, costs1, winner1), (p2, costs2, winner2) = once(benchmark, _run_all)

    for label, p, costs in (
        ("light random graph", p1, costs1),
        ("lower-bound family G_18", p2, costs2),
    ):
        bounds = figure3_bounds(p)
        rows = [
            [name, costs[name][0], costs[name][1], b, costs[name][0] / b]
            for name, b in bounds.items()
        ]
        print_table(
            f"Figure 3: MST algorithms on {label}  [{p}]",
            ["algorithm", "comm", "time", "paper bound", "comm/bound"],
            rows,
        )
        for name, b in bounds.items():
            assert costs[name][0] <= 16 * b, f"{name} blew its bound on {label}"

    # Shape: on the light graph GHS wins the hybrid race and MST_centr is
    # the expensive one; on G_n the order flips.
    assert winner1 == "MST_ghs"
    assert costs1["MST_ghs"][0] < costs1["MST_centr"][0]
    assert winner2 == "MST_centr"
    assert costs2["MST_centr"][0] < costs2["MST_ghs"][0] / 5
    # MST_fast trades communication for time: its time beats serial GHS's.
    assert costs1["MST_fast"][1] <= costs1["MST_ghs"][1]
