"""Section 5 results — controller overhead and runaway capping.

Corollary 5.1: ``c_phi = t_phi = O(c_pi log^2 c_pi)``; incorrect
executions halted with consumption <= 2 * threshold.

Delegates to :mod:`repro.experiments.controller`.
"""

from repro.experiments.controller import overhead_sweep, runaway_sweep

from .util import once, print_table


def _run_all():
    return overhead_sweep(), runaway_sweep()


def test_controller_overhead_and_capping(benchmark):
    sweep_rows, runaway_rows = once(benchmark, _run_all)
    print_table(
        "Controller overhead (correct executions, threshold = c_pi)",
        ["n", "chunks", "c_pi", "naive ctl cost", "aggr ctl cost",
         "aggr / (c log^2 c)", "naive/aggr"],
        sweep_rows,
    )
    print_table(
        "Runaway protocols halted (Cor 5.1: consumption <= 2 x threshold)",
        ["threshold", "consumed", "consumed/threshold"],
        runaway_rows,
    )
    for row in sweep_rows:
        # Corollary 5.1 envelope.
        assert row[5] <= 1.0
    # Shape: the aggregated controller's advantage grows with size.
    assert sweep_rows[-1][6] > sweep_rows[0][6]
    for row in runaway_rows:
        assert row[2] <= 2.0 + 1e-9
