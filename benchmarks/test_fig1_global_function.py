"""Figure 1 — global function computation: Theta(V) comm, Theta(D) time.

Paper's table:
    upper bound: O(V) communication, O(D) time   (Corollary 2.3, via SLTs)
    lower bound: Omega(V) communication, Omega(D) time  (Theorem 2.1)

Delegates to :mod:`repro.experiments.global_function` and asserts the
bound ratios hold at every swept size.
"""

from repro.experiments.global_function import Q, run as run_experiment

from .util import once, print_table


def test_fig1_global_function_bounds(benchmark):
    (table,) = once(benchmark, run_experiment)
    print_table(table.title, table.header, table.rows)
    for row in table.rows:
        comm_ratio, time_ratio = row[5], row[7]
        # Lower bound (Thm 2.1): no correct protocol may beat Omega(V).
        assert comm_ratio >= 1.0 - 1e-9
        # Upper bound (Cor 2.3): converge + broadcast over the SLT.
        assert comm_ratio <= 2.0 * (1.0 + 2.0 / Q) + 1e-9
        assert time_ratio <= 2.0 * (2.0 * Q + 1.0) + 1e-9
    # Shape: the ratios do not grow with n (bounds tight up to constants).
    ratios = table.column("comm/V")
    assert ratios[-1] <= 2.5 * max(1.0, ratios[0])
