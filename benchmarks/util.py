"""Shared helpers for the benchmark harness.

Every benchmark module reproduces one table or figure of the paper: it
runs the relevant algorithms on the paper's workloads, prints the
measured cost-sensitive complexities next to the claimed bounds (the
rows/series of the original artifact), and asserts the *shape* claims —
who wins, by what rough factor, where the crossovers sit.

Run with:  pytest benchmarks/ --benchmark-only -s
(-s shows the tables; results are summarized in EXPERIMENTS.md).
"""

from __future__ import annotations


def print_table(title: str, header: list[str], rows: list[list]) -> None:
    """Render an aligned text table (the benchmark's 'figure')."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(header)
    ]
    print(f"\n=== {title} ===")
    print("  ".join(h.rjust(w) for h, w in zip(header, widths)))
    print("  ".join("-" * w for w in widths))
    for r in str_rows:
        print("  ".join(c.rjust(w) for c, w in zip(r, widths)))


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.01:
            return f"{cell:.3g}"
        return f"{cell:.2f}"
    return str(cell)


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    The simulations are deterministic and expensive; one round is the
    honest measurement.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
