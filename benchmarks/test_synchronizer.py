"""Section 4 results — synchronizer gamma_w amortized overheads.

Claims (Lemma 4.8, with W = poly(n)):
    C(gamma_w) = O(k n log n)        communication overhead per pulse
    T(gamma_w) = O(log_k n log n)    time per pulse

Delegates to :mod:`repro.experiments.synchronizer` (k sweep + n sweep);
output equivalence with the synchronous reference is asserted inside.
"""

from repro.experiments.synchronizer import k_sweep, n_sweep

from .util import once, print_table


def _run_all():
    return k_sweep(), n_sweep()


def test_synchronizer_gamma_w_overheads(benchmark):
    (p, k_rows), n_rows = once(benchmark, _run_all)
    print_table(
        f"gamma_w: k sweep  [{p}]",
        ["k", "pulses", "C/pulse", "C / (k n log n)",
         "T/pulse", "T / (log_k n log n)"],
        k_rows,
    )
    print_table(
        "gamma_w: n sweep (k = 2)",
        ["n", "pulses", "payload cost", "overhead cost", "C/pulse",
         "C / (k n log n)"],
        n_rows,
    )
    # Envelope: per-pulse communication overhead within O(k n log n).
    for row in k_rows:
        assert row[3] <= 4.0
    for row in n_rows:
        assert row[5] <= 4.0
    # Shape: normalized C/pulse does not grow with n (the n log n law).
    assert n_rows[-1][5] <= 2.0 * max(0.25, n_rows[0][5])
