"""Figure 2 — connectivity / spanning tree algorithms.

Paper's table:
    DFS          O(E) comm, O(E) time
    CON_flood    O(E) comm, O(D) time
    CON_hybrid   O(min{E, nV}) comm
    lower bound  Omega(min{E, nV}) comm, Omega(D) time

Delegates to :mod:`repro.experiments.connectivity` (two regimes + the
hybrid budget ablation) and asserts the crossover shape.
"""

from repro.experiments.connectivity import connectivity_suite
from repro.graphs import lower_bound_graph, random_connected_graph

from .util import once, print_table


def _run_all():
    light = random_connected_graph(40, 80, seed=2, max_weight=4)
    heavy = lower_bound_graph(20)
    return (connectivity_suite(light, 0), connectivity_suite(heavy, 1))


def test_fig2_connectivity(benchmark):
    (p1, costs1, winner1), (p2, costs2, winner2) = once(benchmark, _run_all)

    for label, p, costs in (
        ("light random graph (E << nV)", p1, costs1),
        ("lower-bound family G_20 (E >> nV)", p2, costs2),
    ):
        min_bound = min(p.E, p.n * p.V)
        rows = [[name, c, t, c / min_bound] for name, (c, t) in costs.items()]
        rows.append(["Omega(min{E,nV})", min_bound, p.D, 1.0])
        print_table(
            f"Figure 2: connectivity on {label}  [{p}]",
            ["algorithm", "comm", "time", "comm/min(E,nV)"],
            rows,
        )
        # Upper bounds: flood <= 2E, DFS O(E), hybrid O(min).  The hybrid's
        # constant decomposes as ~4 (DFS edge traversals per edge) x ~8
        # (dovetailing: both arms pay up to twice the final budget).
        assert costs["CON_flood"][0] <= 2 * p.E + 1e-9
        assert costs["DFS"][0] <= 12 * p.E
        assert costs["CON_hybrid"][0] <= 48 * min_bound

    # Shape claims: on G_n the hybrid must beat the E-algorithms by a wide
    # margin and be realized by its MST_centr arm.
    assert winner2 == "MST_centr"
    assert costs2["CON_hybrid"][0] < costs2["CON_flood"][0] / 10
    assert costs2["CON_hybrid"][0] < costs2["DFS"][0] / 10
    # On the light graph the DFS arm wins the race.
    assert winner1 == "DFS"
