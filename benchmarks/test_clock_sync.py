"""Section 3 results — clock synchronization pulse delays.

Claims:
    alpha*:      pulse delay Theta(W)
    beta*:       pulse delay ~ tree depth ~ Theta(D)
    gamma*:      pulse delay O(d log^2 n)   — independent of W
    lower bound: Omega(d)

Delegates to :mod:`repro.experiments.clock_sync` (W sweep at fixed d,
serialized-link variant, tree edge-cover ablation).
"""

import math

from repro.experiments.clock_sync import N, WEIGHTS, cover_sweep, weight_sweep

from .util import once, print_table


def _run_all():
    return weight_sweep(), weight_sweep(serialize=True), cover_sweep()


def test_clock_sync_pulse_delays(benchmark):
    rows, ser_rows, (cover_p, cover_rows) = once(benchmark, _run_all)
    header = ["W", "d", "alpha* delay", "beta* delay", "gamma* delay",
              "gamma*/d"]
    print_table(
        f"Clock synchronization on ring({N}) + heavy chord", header, rows
    )
    print_table("Same sweep under serialized links (congestion regime)",
                header, ser_rows)
    print_table(
        f"Ablation: tree edge-cover k for gamma*  [{cover_p}]",
        ["k", "#trees", "max depth", "edge load", "pulse delay",
         "cost/pulse"],
        cover_rows,
    )
    d = rows[0][1]
    log2n = math.log2(N)
    for row in rows:
        w = row[0]
        # alpha* waits for the heavy chord: delay >= W.
        assert row[2] >= w - 1e-9
        # gamma* stays within O(d log^2 n), INDEPENDENT of W...
        assert row[4] <= 8 * d * log2n**2
        # ...and respects the Omega(d) lower bound.
        assert row[4] >= d - 1e-9
    # Serialized links: congestion may add up to another O(log n) factor
    # but never reintroduces a W dependence.
    for row in ser_rows:
        assert row[4] <= 8 * d * log2n**3
    # Shape: alpha* grows ~linearly in W; gamma* stays flat.
    assert rows[-1][2] / rows[0][2] >= 0.5 * (WEIGHTS[-1] / WEIGHTS[0])
    assert rows[-1][4] == rows[0][4]
    # Cover ablation: larger k lowers the per-edge load (or ties).
    loads = [r[3] for r in cover_rows]
    assert loads[-1] <= loads[0]
